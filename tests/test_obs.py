"""Tests for the observability stack: tracer, metrics, exporters."""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.mapreduce.cluster import MapReduceCluster
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
)
from repro.obs.export import (
    chrome_trace,
    collect_events,
    read_jsonl,
    run_summary,
    summarize_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.engine import Simulator
from repro.virt.migration import LiveMigration
from repro.workloads.specs import make_job


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
def test_span_begin_end_records_interval():
    clock = {"t": 1.0}
    tracer = Tracer(lambda: clock["t"])
    span = tracer.begin("work", category="job", track="jobs", size=3)
    clock["t"] = 4.0
    tracer.end(span, status="ok")
    assert span.start == 1.0
    assert span.end == 4.0
    assert span.duration() == 3.0
    assert span.args == {"size": 3, "status": "ok"}
    assert not span.open


def test_span_nesting_via_parent():
    tracer = Tracer(lambda: 0.0)
    outer = tracer.begin("outer")
    inner = tracer.begin("inner", parent=outer)
    assert inner.parent_id == outer.span_id
    assert tracer.children_of(outer) == [inner]


def test_span_end_is_idempotent_and_null_safe():
    clock = {"t": 0.0}
    tracer = Tracer(lambda: clock["t"])
    span = tracer.begin("x")
    clock["t"] = 1.0
    tracer.end(span)
    clock["t"] = 2.0
    tracer.end(span)  # second end must not move the close time
    assert span.end == 1.0
    tracer.end(None)  # tolerated
    tracer.end(NULL_SPAN)  # the null span is never recorded


def test_span_context_manager_closes_on_exception():
    tracer = Tracer(lambda: 0.0)
    with pytest.raises(RuntimeError):
        with tracer.span("guarded"):
            raise RuntimeError("boom")
    assert tracer.open_spans() == []


def test_tracer_queries():
    tracer = Tracer(lambda: 0.0)
    a = tracer.begin("a", category="job")
    tracer.begin("b", category="net")
    tracer.instant("tick", category="sla")
    assert len(tracer) == 3
    assert [s.name for s in tracer.spans_of("job")] == ["a"]
    assert len(tracer.open_spans()) == 2
    tracer.end(a)
    assert len(tracer.open_spans()) == 1


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    span = NULL_TRACER.begin("x", category="job", big_arg=object())
    assert span is NULL_SPAN
    NULL_TRACER.end(span)
    NULL_TRACER.instant("y")
    with NULL_TRACER.span("z") as handle:
        assert handle is NULL_SPAN
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.open_spans() == []


def test_enable_tracing_is_idempotent():
    obs = Observability()
    assert not obs.tracing
    tracer = obs.enable_tracing()
    tracer.begin("keep-me")
    assert obs.enable_tracing() is tracer  # second call keeps state
    assert len(tracer.spans) == 1


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_counter_increments_and_rejects_decrease():
    registry = MetricsRegistry()
    counter = registry.counter("jobs")
    counter.inc()
    counter.inc(2.5)
    assert registry.counter("jobs") is counter
    assert registry.counters() == {"jobs": 3.5}
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_gauge_history_follows_flag():
    clock = {"t": 0.0}
    registry = MetricsRegistry(clock=lambda: clock["t"])
    gauge = registry.gauge("load")
    gauge.set(1.0)  # history off: last value only
    assert "load" not in registry.traces
    registry.history = True
    clock["t"] = 5.0
    gauge.set(2.0)
    assert gauge.value == 2.0
    assert list(registry.timeseries("load")) == [(5.0, 2.0)]


def test_histogram_summary_percentiles():
    registry = MetricsRegistry()
    hist = registry.histogram("jct")
    for v in [10.0, 20.0, 30.0, 40.0]:
        hist.observe(v)
    summary = hist.summary()
    assert summary["count"] == 4.0
    assert summary["mean"] == pytest.approx(25.0)
    assert summary["p10"] == pytest.approx(13.0)
    assert summary["p50"] == pytest.approx(25.0)
    assert summary["p95"] == pytest.approx(38.5)
    assert summary["max"] == 40.0
    assert registry.histogram("empty").summary()["p99"] == 0.0


def test_empty_histogram_summary_is_nan_free_zeros():
    import math

    summary = MetricsRegistry().histogram("empty").summary()
    assert set(summary) == {
        "count", "mean", "min", "p10", "p50", "p95", "p99", "max"
    }
    assert all(v == 0.0 for v in summary.values())
    assert not any(math.isnan(v) for v in summary.values())


def test_histogram_ignores_non_finite_samples():
    hist = MetricsRegistry().histogram("h")
    hist.observe(float("nan"))
    hist.observe(float("inf"))
    hist.observe(5.0)
    summary = hist.summary()
    assert summary["count"] == 3.0  # raw sample count is preserved
    assert summary["mean"] == 5.0 and summary["max"] == 5.0
    assert summary["p50"] == 5.0
    # nothing but junk -> zeros, never NaN
    junk = MetricsRegistry().histogram("junk")
    junk.observe(float("nan"))
    assert all(v == 0.0 for k, v in junk.summary().items() if k != "count")


def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(7.0)
    registry.histogram("h").observe(1.0)
    snap = registry.snapshot()
    assert snap["counters"] == {"c": 1.0}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["histograms"]["h"]["count"] == 1.0
    json.dumps(snap)  # must be JSON-serializable as-is


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _tiny_obs():
    clock = {"t": 0.0}
    obs = Observability(clock=lambda: clock["t"])
    tracer = obs.enable_tracing()
    outer = tracer.begin("job", category="job", track="jobs")
    clock["t"] = 1.0
    inner = tracer.begin("map", category="task", track="tt", parent=outer)
    tracer.instant("probe", category="sla", track="sla", latency_ms=3.0)
    obs.metrics.counter("jobs.submitted").inc()
    obs.metrics.gauge("load").set(0.5)
    clock["t"] = 2.0
    tracer.end(inner)
    tracer.end(outer)
    return obs


def test_collect_events_covers_all_kinds():
    events = collect_events(_tiny_obs())
    kinds = {e["type"] for e in events}
    assert kinds == {"span", "instant", "sample", "counter"}
    spans = {e["name"]: e for e in events if e["type"] == "span"}
    assert spans["map"]["parent"] == spans["job"]["id"]
    assert spans["job"]["dur"] == pytest.approx(2.0)


def test_open_spans_marked_unfinished():
    obs = Observability()
    obs.enable_tracing().begin("dangling")
    (span,) = [e for e in collect_events(obs) if e["type"] == "span"]
    assert span["args"]["unfinished"] is True


def test_chrome_trace_validates_and_scales_to_us():
    doc = chrome_trace(collect_events(_tiny_obs()))
    n = validate_chrome_trace(doc)
    assert n == len(doc["traceEvents"])
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    job = next(e for e in complete if e["name"] == "job")
    assert job["dur"] == pytest.approx(2e6)  # seconds -> microseconds
    names = {e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"jobs", "tt", "sla"} <= names


def test_validate_chrome_trace_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace(["not", "a", "dict"])
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "??", "pid": 1}]})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "ts": 0}]}
        )  # X without dur


def test_jsonl_round_trip(tmp_path):
    obs = _tiny_obs()
    path = str(tmp_path / "events.jsonl")
    n = write_jsonl(path, obs)
    events = read_jsonl(path)
    assert len(events) == n
    assert events == collect_events(obs)


def test_read_jsonl_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "span"}\nnot json\n')
    with pytest.raises(ValueError):
        read_jsonl(str(path))
    path.write_text('{"no_type": 1}\n')
    with pytest.raises(ValueError):
        read_jsonl(str(path))


def test_summaries_render():
    obs = _tiny_obs()
    obs.metrics.histogram("jct").observe(5.0)
    text = run_summary(obs)
    assert "spans by category" in text
    assert "histograms" in text
    assert summarize_events([]) == "(empty trace)"


# ----------------------------------------------------------------------
# instrumented simulation
# ----------------------------------------------------------------------
def _run_traced_job(seed=42, tracing=True):
    sim = Simulator(seed=seed)
    if tracing:
        sim.obs.enable_tracing()
    cluster = Cluster.native(sim, 4)
    mr = MapReduceCluster(sim, cluster.fabric, cluster.native_contexts())
    job = mr.run_job(make_job("Sort", input_gb=0.25, num_reducers=2))
    return sim, job


def test_mr_run_produces_nested_spans():
    sim, job = _run_traced_job()
    tracer = sim.obs.tracer
    job_spans = tracer.spans_of("job")
    assert len(job_spans) == 1
    attempts = tracer.children_of(job_spans[0])
    assert len(attempts) == len(job.map_tasks) + len(job.reduce_tasks)
    stages = tracer.children_of(attempts[0])
    assert [s.name for s in stages] == ["init", "read", "cpu", "spill"]
    assert tracer.open_spans() == []  # everything closed at job end
    assert tracer.spans_of("net"), "shuffle flows should leave net spans"


def test_mr_run_populates_metrics():
    sim, job = _run_traced_job()
    counters = sim.obs.metrics.counters()
    assert counters["jobs.completed"] == 1.0
    assert counters["attempts.completed"] == len(job.map_tasks) + len(
        job.reduce_tasks
    )
    jct_hist = sim.obs.metrics.histogram("job.jct_s")
    assert jct_hist.count == 1
    assert jct_hist.mean() == pytest.approx(job.jct)


def test_untraced_run_records_no_spans():
    sim, job = _run_traced_job(tracing=False)
    assert job.done
    assert len(sim.obs.tracer) == 0
    assert sim.obs.metrics.counters()["jobs.completed"] == 1.0


def test_tracing_does_not_perturb_determinism():
    _, plain = _run_traced_job(seed=7, tracing=False)
    _, traced = _run_traced_job(seed=7, tracing=True)
    assert traced.jct == plain.jct
    assert traced.map_phase_time == plain.map_phase_time
    assert traced.reduce_phase_time == plain.reduce_phase_time


def test_migration_spans(sim, virtual_cluster):
    sim.obs.enable_tracing()
    spare = virtual_cluster.add_pm("spare")
    vm = virtual_cluster.vms[0]
    moved = []
    LiveMigration(sim, virtual_cluster.fabric, vm, spare, on_complete=moved.append)
    sim.run(until=600.0)
    assert moved
    (span,) = sim.obs.tracer.spans_of("migration")[:1]
    assert span.name == f"migrate:{vm.name}"
    assert not span.open
    assert span.args["migration_time_s"] == pytest.approx(
        moved[0].migration_time_s
    )
    children = sim.obs.tracer.children_of(span)
    assert [c.name for c in children] == ["stop-and-copy"]
    assert sim.obs.metrics.counters()["migrations.completed"] == 1.0
    assert sim.obs.metrics.histogram("migration.downtime_ms").count == 1


def test_chrome_export_of_real_run(tmp_path):
    sim, _job = _run_traced_job()
    path = str(tmp_path / "trace.json")
    write_chrome_trace(path, sim.obs)
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    n = validate_chrome_trace(doc)
    assert n > 50
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"job", "task", "task.stage", "net"} <= cats


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_run_with_trace_artifacts(tmp_path, capsys):
    from repro.cli import main

    trace = tmp_path / "t.json"
    events = tmp_path / "t.jsonl"
    metrics = tmp_path / "m.json"
    rc = main(
        [
            "run", "wcount", "--pms", "4", "--input-gb", "0.25",
            "--trace", str(trace),
            "--events-out", str(events),
            "--metrics-out", str(metrics),
        ]
    )
    assert rc == 0
    with open(trace, "r", encoding="utf-8") as fh:
        assert validate_chrome_trace(json.load(fh)) > 0
    loaded = read_jsonl(str(events))
    assert any(e["type"] == "span" and e["cat"] == "job" for e in loaded)
    with open(metrics, "r", encoding="utf-8") as fh:
        snap = json.load(fh)
    assert snap["counters"]["jobs.completed"] == 1.0
    assert "wrote" in capsys.readouterr().out


def test_cli_trace_summarizes_jsonl(tmp_path, capsys):
    from repro.cli import main

    obs = _tiny_obs()
    events = tmp_path / "t.jsonl"
    write_jsonl(str(events), obs)
    chrome = tmp_path / "chrome.json"
    rc = main(["trace", str(events), "--chrome", str(chrome)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "spans by category" in out
    with open(chrome, "r", encoding="utf-8") as fh:
        validate_chrome_trace(json.load(fh))


def test_cli_trace_validates_chrome_json(tmp_path, capsys):
    from repro.cli import main

    obs = _tiny_obs()
    trace = tmp_path / "t.json"
    write_chrome_trace(str(trace), obs)
    assert main(["trace", str(trace)]) == 0
    assert "valid Chrome trace" in capsys.readouterr().out


# ----------------------------------------------------------------------
# exporter determinism
# ----------------------------------------------------------------------
def _export_bytes(tmp_path, tag, sims):
    """Chrome trace + JSONL bytes for every traced simulator, in order."""
    blobs = []
    for i, sim in enumerate(sims):
        chrome = tmp_path / f"{tag}-{i}.json"
        jsonl = tmp_path / f"{tag}-{i}.jsonl"
        write_chrome_trace(str(chrome), sim.obs)
        write_jsonl(str(jsonl), sim.obs)
        blobs.append(chrome.read_bytes())
        blobs.append(jsonl.read_bytes())
    return blobs


def test_exports_byte_identical_across_same_seed_runs(tmp_path):
    first = _export_bytes(tmp_path, "a", [_run_traced_job(seed=13)[0]])
    second = _export_bytes(tmp_path, "b", [_run_traced_job(seed=13)[0]])
    assert first == second


def test_exports_byte_identical_for_chaos_cell(tmp_path):
    """fig08-under-faults: traced exports replay byte-for-byte."""
    from repro.experiments.fig08_faults import run as run_faults
    from repro.obs.capture import SimCapture

    def one_run(tag):
        with SimCapture(tracing=True) as capture:
            run_faults(scale="tiny", seed=1, faults="poisson:node=0.02",
                       deployments=("native",), waves=1)
        assert capture.simulators
        return _export_bytes(tmp_path, tag, capture.simulators)

    assert one_run("a") == one_run("b")


# ----------------------------------------------------------------------
# top-span tables
# ----------------------------------------------------------------------
def test_top_spans_tables_and_empty_case():
    from repro.obs.export import top_spans

    sim, _job = _run_traced_job()
    text = top_spans(collect_events(sim.obs), 3)
    assert "slowest job spans" in text
    assert "slowest task spans" in text
    assert top_spans([], 3) == "(no spans)"


def test_cli_trace_top_prints_slowest_spans(tmp_path, capsys):
    from repro.cli import main

    sim, _job = _run_traced_job()
    events = tmp_path / "t.jsonl"
    write_jsonl(str(events), sim.obs)
    assert main(["trace", str(events), "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "slowest task.stage spans" in out
