"""repro.grid: protocol framing, study state machine, streaming
aggregates, and the coordinator/worker loop under failure.

The socket tests run the real :class:`Coordinator` against in-thread
workers with an injected ``execute`` (microseconds per cell), so the
failure paths -- worker death mid-cell, heartbeat timeout, retry
exhaustion, coordinator kill + resume -- are exercised with real wire
traffic but no simulator cost.  One subprocess test runs the genuine
fleet (``python -m repro grid worker``) over cheap real cells and pins
the headline determinism contract: the grid's canonical report is
byte-identical to a single-process ``run_sweep`` of the same spec.
"""

import io
import json
import socket
import statistics
import threading

import pytest

from repro.grid import (
    Coordinator,
    GridProgress,
    StreamingStats,
    StudyState,
    WorkUnit,
    parse_address,
    protocol,
    run_grid,
    run_worker,
    shard_spec,
)
from repro.grid.state import DONE, FAILED, INFLIGHT, QUEUED
from repro.sweep import (
    ResultCache,
    SweepSpec,
    canonical_report,
    cell_key,
    run_sweep,
)

CHEAP_PARAMS = {"parts": "fig1c", "sizes_gb": 1.0}


def cheap_spec(seeds=(1,), figures=("fig01",)):
    return SweepSpec(
        figures=figures, scales=("tiny",), seeds=seeds, params=CHEAP_PARAMS
    )


def fake_execute(config):
    """A deterministic stand-in for ``execute_cell`` (no simulator)."""
    return {
        "figure": config["figure"],
        "scale": config["scale"],
        "seed": config["seed"],
        "params": dict(config.get("params", {})),
        "result": {"metric": float(config["seed"]) * 2.0},
        "metrics": {},
        "wall_s": 0.0,
    }


def make_units(n, figure="fig01"):
    return [
        WorkUnit(
            index=i,
            key=f"k{i}",
            config={
                "figure": figure,
                "scale": "tiny",
                "seed": i + 1,
                "params": {},
            },
            label=f"{figure}@tiny seed={i + 1}",
        )
        for i in range(n)
    ]


def worker_thread(coord, worker_id, execute=fake_execute, heartbeat_s=0.1):
    thread = threading.Thread(
        target=run_worker,
        args=(coord.host, coord.port),
        kwargs={
            "worker_id": worker_id,
            "execute": execute,
            "heartbeat_s": heartbeat_s,
        },
        daemon=True,
    )
    thread.start()
    return thread


# ----------------------------------------------------------------------
# protocol framing
# ----------------------------------------------------------------------
def test_protocol_round_trips_every_message():
    messages = [
        protocol.hello("w0", 123),
        protocol.welcome("study", 2.0),
        protocol.ready("w0"),
        protocol.work("k", {"figure": "fig01"}, 1, "label"),
        protocol.drain(0.5),
        protocol.shutdown(),
        protocol.result("w0", "k", 1, {"result": {"x": 1}}),
        protocol.error("w0", "k", 2, "boom", "tb"),
        protocol.heartbeat("w0", "k"),
        protocol.heartbeat("w0", None),
    ]
    buf = io.BytesIO()
    for msg in messages:
        protocol.send_msg(buf, msg)
    buf.seek(0)
    assert [protocol.recv_msg(buf) for _ in messages] == messages
    assert protocol.recv_msg(buf) is None  # EOF


def test_protocol_rejects_garbage_frames():
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_msg(io.BytesIO(b"not json\n"))
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_msg(io.BytesIO(b'{"no": "type"}\n'))
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_msg(io.BytesIO(b'[1, 2]\n'))


def test_parse_address():
    assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
    with pytest.raises(ValueError):
        parse_address("no-port")
    with pytest.raises(ValueError):
        parse_address(":8000")


# ----------------------------------------------------------------------
# the state machine (no sockets, no clocks)
# ----------------------------------------------------------------------
def test_claim_hands_out_lowest_index_first():
    state = StudyState(make_units(3))
    state.register_worker("a", now=0.0)
    state.register_worker("b", now=0.0)
    first = state.claim("a", now=0.0)
    second = state.claim("b", now=0.0)
    assert (first.index, second.index) == (0, 1)
    assert first.status == INFLIGHT and first.attempts == 1
    # a worker with an inflight unit cannot claim another
    assert state.claim("a", now=0.0) is None


def test_fail_requeues_with_exponential_backoff():
    state = StudyState(make_units(1), max_attempts=3, backoff_s=0.5)
    state.register_worker("a", now=0.0)
    state.claim("a", now=0.0)
    state.fail("k0", now=0.0, reason="boom")
    unit = state.unit_for("k0")
    assert unit.status == QUEUED
    assert unit.not_before == pytest.approx(0.5)  # backoff * 2^0
    assert state.retry_after(now=0.0) == pytest.approx(0.5)
    # gated: not claimable before the backoff expires
    assert state.claim("a", now=0.1) is None
    assert state.claim("a", now=0.5) is not None
    state.fail("k0", now=1.0, reason="boom again")
    assert unit.not_before == pytest.approx(1.0 + 0.5 * 2)  # backoff * 2^1


def test_retry_exhaustion_yields_failed_record_and_finishes():
    state = StudyState(make_units(1), max_attempts=2, backoff_s=0.0)
    state.register_worker("a", now=0.0)
    for attempt in range(2):
        assert state.claim("a", now=float(attempt)) is not None
        state.fail("k0", now=float(attempt), reason=f"boom {attempt}")
    unit = state.unit_for("k0")
    assert unit.status == FAILED
    assert state.finished
    (record,) = state.failure_records()
    assert record["failed"] and record["attempts"] == 2
    assert record["error"] == "boom 1"
    assert record["errors"] == ["boom 0", "boom 1"]
    assert state.completed_records() == []


def test_duplicate_completion_is_dropped():
    state = StudyState(make_units(1))
    state.register_worker("a", now=0.0)
    state.claim("a", now=0.0)
    doc = fake_execute(state.unit_for("k0").config)
    assert state.complete("k0", doc) is True
    assert state.complete("k0", dict(doc)) is False
    assert state.counts()["duplicates"] == 1
    assert state.counts()["completed"] == 1
    # records keep spec order metadata
    assert state.records[0]["key"] == "k0"


def test_lose_worker_requeues_its_inflight_unit():
    state = StudyState(make_units(2))
    state.register_worker("a", now=0.0)
    unit = state.claim("a", now=0.0)
    assert state.lose_worker("a", now=1.0, reason="died") == unit.key
    assert unit.status == QUEUED
    assert state.counts()["requeues"] == 1
    assert state.counts()["workers_lost"] == 1
    # losing it twice is a no-op
    assert state.lose_worker("a", now=1.0, reason="died") is None
    # the id can reconnect after a loss
    state.register_worker("a", now=2.0)


def test_retire_worker_is_not_a_loss():
    state = StudyState(make_units(1))
    state.register_worker("a", now=0.0)
    state.retire_worker("a")
    assert state.counts()["workers_lost"] == 0
    assert state.counts()["workers"] == 0


def test_stale_workers_by_heartbeat_age():
    state = StudyState(make_units(2), heartbeat_timeout_s=1.0)
    state.register_worker("a", now=0.0)
    state.register_worker("b", now=0.0)
    state.beat("b", now=1.5)
    assert state.stale_workers(now=1.8) == ["a"]
    assert state.stale_workers(now=0.5) == []


# ----------------------------------------------------------------------
# streaming aggregates
# ----------------------------------------------------------------------
def test_streaming_stats_match_batch_statistics():
    values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    stats = StreamingStats()
    for v in values:
        stats.push(v)
    snap = stats.snapshot()
    assert snap["n"] == len(values)
    assert snap["mean"] == pytest.approx(statistics.fmean(values))
    assert snap["p50"] == pytest.approx(statistics.median(values))
    assert stats.percentile(0.0) == min(values)
    assert stats.percentile(100.0) == max(values)


def test_streaming_stats_small_n_exact_pinned():
    """Below the handoff threshold, percentiles are *exact* -- pinned
    against hand-computed linear interpolation."""
    stats = StreamingStats()
    for v in (10.0, 20.0, 30.0, 40.0):
        stats.push(v)
    assert stats.snapshot() == {"n": 4, "mean": 25.0, "p50": 25.0, "p95": 38.5}


def test_streaming_stats_bounded_past_handoff():
    """Past EXACT_SAMPLE_MAX the sorted buffer is dropped (O(1) memory,
    no more O(n) insort) while min/max stay exact and p50/p95 track the
    true quantiles via the P^2 estimators."""
    import random

    from repro.grid.progress import EXACT_SAMPLE_MAX

    rng = random.Random(3)
    stats = StreamingStats()
    values = [rng.uniform(0.0, 100.0) for _ in range(20_000)]
    for v in values:
        stats.push(v)
    assert stats._sorted == []  # exact buffer released at the handoff
    assert stats.n == 20_000 > EXACT_SAMPLE_MAX
    assert stats.mean == pytest.approx(statistics.fmean(values))
    values.sort()
    assert stats.percentile(0.0) == values[0]
    assert stats.percentile(100.0) == values[-1]
    assert stats.percentile(50.0) == pytest.approx(values[10_000], abs=2.0)
    assert stats.percentile(95.0) == pytest.approx(values[19_000], abs=2.0)
    with pytest.raises(ValueError):
        stats.percentile(75.0)


def test_grid_progress_frames_accumulate_groups():
    frames = []
    progress = GridProgress("study", total_cells=2, sink=frames.append)
    for seed in (1, 2):
        progress.observe(
            dict(fake_execute({
                "figure": "fig01", "scale": "tiny",
                "seed": seed, "params": {},
            }), wall_s=0.5 * seed)
        )
    frame = progress.frame(ts=1.0, counts={"completed": 2}, done=True)
    assert frames == [frame]
    assert frame["schema"] == protocol.PROTOCOL
    assert frame["seq"] == 0 and progress.seq == 1
    assert frame["grid"] == {"completed": 2, "done": True}
    assert frame["wall_s"]["n"] == 2
    (group,) = frame["groups"]
    assert group["metrics"]["metric"]["n"] == 2
    assert group["metrics"]["metric"]["mean"] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# fleet-health telemetry (worker snapshots, queue age, status CLI)
# ----------------------------------------------------------------------
def test_heartbeat_carries_optional_rtt():
    msg = protocol.heartbeat("w", "k", rtt_ms=3.14159)
    assert msg["rtt_ms"] == 3.142
    assert "rtt_ms" not in protocol.heartbeat("w", "k")
    # extra fields survive the wire (old coordinators just ignore them)
    buf = io.BytesIO()
    protocol.send_msg(buf, msg)
    buf.seek(0)
    assert protocol.recv_msg(buf)["rtt_ms"] == 3.142


def test_worker_snapshots_track_fleet_health():
    state = StudyState(make_units(2))
    state.mark_queued(0.0)
    state.register_worker("a", now=0.0)
    state.register_worker("b", now=0.0)
    unit = state.claim("a", now=0.0)
    state.beat("a", now=1.0, rtt_ms=4.25)
    doc = dict(fake_execute(unit.config), events=5000, wall_s=2.5)
    state.complete(unit.key, doc)

    a, b = state.worker_snapshots(now=2.0)
    assert a["id"] == "a" and a["alive"]
    assert a["beat_age_s"] == pytest.approx(1.0)
    assert a["unit"] is None  # completed, back to idle
    assert a["cells"] == 1 and a["events"] == 5000
    assert a["busy_s"] == pytest.approx(2.5)
    assert a["events_per_s"] == pytest.approx(2000.0)
    assert a["rtt_ms"] == pytest.approx(4.25)
    assert b["cells"] == 0 and b["events_per_s"] == 0.0
    assert b["rtt_ms"] is None
    assert b["beat_age_s"] == pytest.approx(2.0)

    # a bounced attempt is charged to the worker that held the unit,
    # and the requeue re-stamps the unit's queue entry time
    unit2 = state.claim("a", now=2.0)
    state.fail(unit2.key, now=2.0, reason="boom")
    snapshots = state.worker_snapshots(now=2.0)
    assert snapshots[0]["retries_charged"] == 1
    assert snapshots[1]["retries_charged"] == 0
    assert state.unit_for(unit2.key).queued_at == pytest.approx(2.0)

    # an orderly retirement is distinguishable from a loss
    state.retire_worker("b")
    a, b = state.worker_snapshots(now=3.0)
    assert not b["alive"] and b["retired"]
    assert not a["retired"]


def test_queue_age_stats_percentiles():
    state = StudyState(make_units(4))
    state.mark_queued(0.0)
    state.register_worker("a", now=0.0)
    state.claim("a", now=0.0)  # inflight units are excluded
    for unit, queued_at in zip(state.units[1:], (2.0, 4.0, 6.0)):
        unit.queued_at = queued_at
    stats = state.queue_age_stats(now=10.0)
    assert stats["n"] == 3
    assert stats["p50"] == pytest.approx(6.0)
    assert stats["max"] == pytest.approx(8.0)
    assert stats["p95"] >= stats["p50"]
    empty = StudyState([]).queue_age_stats(now=1.0)
    assert empty == {"n": 0, "p50": 0.0, "p95": 0.0, "max": 0.0}


def test_grid_progress_frame_carries_fleet_telemetry():
    progress = GridProgress("study", total_cells=1, sink=lambda f: None)
    workers = [{"id": "w0", "alive": True}]
    queue_age = {"n": 1, "p50": 0.5, "p95": 0.5, "max": 0.5}
    frame = progress.frame(
        ts=1.0, counts={}, workers=workers, queue_age=queue_age
    )
    assert frame["workers"] == workers
    assert frame["queue_age"] == queue_age
    bare = progress.frame(ts=2.0, counts={})
    assert "workers" not in bare and "queue_age" not in bare


def test_cli_grid_status_renders_fleet_panel(tmp_path, capsys):
    from repro.cli import main

    frame = {
        "type": "frame", "schema": protocol.PROTOCOL,
        "study": "s", "ts": 12.0, "seq": 3,
        "grid": {"completed": 1, "cells": 4, "cache_hits": 0, "failed": 0,
                 "inflight": 1, "queued": 2, "workers": 2,
                 "workers_lost": 1, "requeues": 1, "done": False},
        "wall_s": {"n": 1, "mean": 2.0, "p95": 2.0},
        "queue_age": {"n": 2, "p50": 3.0, "p95": 5.0, "max": 5.5},
        "workers": [
            {"id": "w0", "alive": True, "beat_age_s": 0.4,
             "unit": "fig01@tiny seed=2", "cells": 1, "retries_charged": 1,
             "events": 5000, "busy_s": 2.5, "events_per_s": 2000.0,
             "rtt_ms": 4.2},
            {"id": "w1", "alive": False, "beat_age_s": 9.0, "unit": None,
             "cells": 0, "retries_charged": 0, "events": 0, "busy_s": 0.0,
             "events_per_s": 0.0, "rtt_ms": None},
        ],
        "groups": [],
    }
    path = tmp_path / "frames.jsonl"
    path.write_text(json.dumps(frame) + "\n")
    assert main(["grid", "status", str(path)]) == 0
    out = capsys.readouterr().out
    assert "queue age    p50 3.0s / p95 5.0s / max 5.5s over 2 queued" in out
    assert "worker w0" in out and "beat 0.4s ago" in out
    assert "on fig01@tiny s" in out  # unit label truncated for the row
    assert "1 retries charged, 2,000 ev/s, rtt 4.2ms" in out
    assert "worker w1" in out and "LOST" in out and "idle" in out


def test_grid_study_frames_include_fleet_telemetry(tmp_path):
    frames = []
    spec = cheap_spec(seeds=(1, 2))
    cache = ResultCache(tmp_path / "c")
    coord = Coordinator(
        spec, cache, backoff_s=0.05, frame_sink=frames.append
    ).start()
    thread = worker_thread(coord, "t0")
    report = coord.run()
    thread.join(timeout=5.0)
    assert report["totals"]["executed"] == 2
    final = frames[-1]
    assert final["grid"]["done"] is True
    assert final["queue_age"]["n"] == 0  # drained
    (worker,) = final["workers"]
    assert worker["id"] == "t0" and worker["cells"] == 2


# ----------------------------------------------------------------------
# coordinator + workers over real sockets (injected execute)
# ----------------------------------------------------------------------
def test_grid_study_completes_with_threaded_workers(tmp_path):
    spec = cheap_spec(seeds=(1, 2, 3))
    cache = ResultCache(tmp_path / "c")
    coord = Coordinator(spec, cache, backoff_s=0.05).start()
    threads = [worker_thread(coord, f"t{i}") for i in range(2)]
    report = coord.run()
    for thread in threads:
        thread.join(timeout=5.0)
    assert report["totals"] == dict(
        report["totals"], cells=3, executed=3, cache_hits=0, failed=0
    )
    assert report["grid"]["workers_lost"] == 0
    # records are in spec grid order regardless of which worker won
    assert [c["seed"] for c in report["cells"]] == [1, 2, 3]
    # every completion became durable before it became observable
    assert all(
        cache.get(cell_key(c.config())) is not None for c in spec.cells()
    )


def test_worker_death_mid_cell_requeues_to_a_survivor(tmp_path):
    spec = cheap_spec(seeds=(1, 2))
    cache = ResultCache(tmp_path / "c")
    coord = Coordinator(spec, cache, backoff_s=0.05).start()

    # a fake worker claims a cell and dies holding it
    sock = socket.create_connection((coord.host, coord.port))
    rfh, wfh = sock.makefile("rb"), sock.makefile("wb")
    protocol.send_msg(wfh, protocol.hello("victim", 1))
    assert protocol.recv_msg(rfh)["type"] == protocol.WELCOME
    protocol.send_msg(wfh, protocol.ready("victim"))
    claimed = protocol.recv_msg(rfh)
    assert claimed["type"] == protocol.WORK
    sock.close()  # SIGKILL, as seen from the coordinator

    survivor = worker_thread(coord, "survivor")
    report = coord.run()
    survivor.join(timeout=5.0)
    assert report["totals"]["cells"] == 2
    assert report["totals"]["failed"] == 0
    assert report["grid"]["workers_lost"] == 1
    assert report["grid"]["requeues"] == 1
    # the orphaned cell was completed elsewhere
    done = {c["key"] for c in report["cells"]}
    assert claimed["key"] in done


def test_heartbeat_timeout_reaps_wedged_worker(tmp_path):
    spec = cheap_spec(seeds=(1,))
    cache = ResultCache(tmp_path / "c")
    coord = Coordinator(
        spec, cache, backoff_s=0.05, heartbeat_timeout_s=0.3, max_attempts=2
    ).start()

    # wedged: claims the only cell, stays connected, never heartbeats
    sock = socket.create_connection((coord.host, coord.port))
    rfh, wfh = sock.makefile("rb"), sock.makefile("wb")
    protocol.send_msg(wfh, protocol.hello("wedged", 1))
    protocol.recv_msg(rfh)
    protocol.send_msg(wfh, protocol.ready("wedged"))
    assert protocol.recv_msg(rfh)["type"] == protocol.WORK

    survivor = worker_thread(coord, "survivor")
    try:
        report = coord.run()
    finally:
        sock.close()
    survivor.join(timeout=5.0)
    assert report["grid"]["workers_lost"] == 1
    assert report["totals"]["failed"] == 0
    assert report["totals"]["executed"] == 1


def test_retry_exhaustion_records_failed_cell_without_hanging(tmp_path):
    spec = cheap_spec(seeds=(1, 2))
    cache = ResultCache(tmp_path / "c")

    def poison(config):
        if config["seed"] == 2:
            raise ValueError("poison cell")
        return fake_execute(config)

    coord = Coordinator(spec, cache, max_attempts=2, backoff_s=0.01).start()
    thread = worker_thread(coord, "t0", execute=poison)
    report = coord.run()
    thread.join(timeout=5.0)
    assert report["totals"]["failed"] == 1
    assert report["totals"]["executed"] == 1
    (failure,) = report["failures"]
    assert failure["seed"] == 2 and failure["attempts"] == 2
    assert "poison cell" in failure["error"]
    # the failed cell still occupies its spec-order slot in the report
    assert [c["seed"] for c in report["cells"]] == [1, 2]
    assert report["cells"][1]["failed"] is True
    # a poison cell never contaminates the durable cache
    assert cache.get(cell_key(spec.cells()[1].config())) is None


def test_killed_coordinator_resumes_with_zero_reexecution(tmp_path):
    spec = cheap_spec(seeds=(1, 2, 3))
    cache = ResultCache(tmp_path / "c")
    executions = []

    def counting(config):
        executions.append(config["seed"])
        return fake_execute(config)

    # first coordinator: one cell completes, then it is killed
    first = Coordinator(spec, cache, backoff_s=0.05).start()
    sock = socket.create_connection((first.host, first.port))
    rfh, wfh = sock.makefile("rb"), sock.makefile("wb")
    protocol.send_msg(wfh, protocol.hello("w", 1))
    protocol.recv_msg(rfh)
    protocol.send_msg(wfh, protocol.ready("w"))
    work = protocol.recv_msg(rfh)
    doc = counting(work["config"])
    protocol.send_msg(wfh, protocol.result("w", work["key"], 1, doc))
    protocol.send_msg(wfh, protocol.ready("w"))
    protocol.recv_msg(rfh)  # second work offer arrives: study is mid-flight
    first.stop()  # the kill
    sock.close()
    assert not first.state.finished

    # second coordinator, same cache: finished cells come back from disk
    second = Coordinator(spec, cache, backoff_s=0.05).start()
    assert second.resumed_from_cache == 1
    thread = worker_thread(second, "t0", execute=counting)
    report = second.run()
    thread.join(timeout=5.0)
    assert sorted(executions) == [1, 2, 3]  # each cell executed exactly once
    assert report["totals"]["cache_hits"] == 1
    assert report["totals"]["executed"] == 2
    assert report["grid"]["resumed_from_cache"] == 1
    assert [c["seed"] for c in report["cells"]] == [1, 2, 3]


def test_fully_cached_study_spawns_no_workers(tmp_path):
    spec = cheap_spec(seeds=(1, 2))
    cache = ResultCache(tmp_path / "c")
    for cell in spec.cells():
        cache.put(cell_key(cell.config()), fake_execute(cell.config()))
    report = run_grid(spec, cache, workers=2)
    assert report["totals"] == dict(
        report["totals"], cells=2, executed=0, cache_hits=2
    )
    assert report["grid"]["workers_spawned"] == 0
    assert report["grid"]["resumed_from_cache"] == 2


def test_shard_spec_keys_match_cell_key():
    spec = cheap_spec(seeds=(1, 2))
    units = shard_spec(spec)
    assert [u.index for u in units] == [0, 1]
    assert [u.key for u in units] == [
        cell_key(c.config()) for c in spec.cells()
    ]


# ----------------------------------------------------------------------
# the determinism contract, end to end (real cells, real fleet)
# ----------------------------------------------------------------------
def test_grid_canonical_report_matches_single_process_sweep(tmp_path):
    spec = cheap_spec(seeds=(1, 2))
    sweep = run_sweep(spec, jobs=1, cache=ResultCache(tmp_path / "sweep"))
    grid = run_grid(spec, ResultCache(tmp_path / "grid"), workers=2)
    assert grid["totals"]["failed"] == 0
    blob_sweep = json.dumps(canonical_report(sweep), sort_keys=True)
    blob_grid = json.dumps(canonical_report(grid), sort_keys=True)
    assert blob_sweep == blob_grid
