"""repro.obs.prof: frame math, digest invariance, flamegraphs, CLI."""

import json
import tracemalloc

import pytest

from repro.obs.bench import result_digest
from repro.obs.capture import SimCapture
from repro.obs.prof import (
    Profiler,
    collapsed_stacks,
    compare_profiles,
    run_profile,
    speedscope_doc,
    validate_speedscope,
    write_speedscope,
)
from repro.sim.engine import Simulator, _callback_names


class FakeClock:
    """Deterministic perf_counter stand-in: advance() by hand."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# the frame stack: self/cumulative arithmetic
# ----------------------------------------------------------------------
def test_self_and_cumulative_split_with_nested_frames():
    clock = FakeClock()
    prof = Profiler(granularity="full", clock=clock)
    prof.begin_event("repro.sim.network", "NetworkFabric._tick")
    clock.advance(1.0)  # callback's own work before the fill
    prof.push("net.maxmin_fill", subsystem="repro.sim.network")
    clock.advance(3.0)  # inside the fill
    prof.pop()
    clock.advance(2.0)  # callback's own work after the fill
    prof.end_event()

    subs = prof.subsystem_table()
    net = subs["repro.sim.network"]
    assert net["cum_s"] == pytest.approx(6.0)
    assert net["self_s"] == pytest.approx(6.0)  # 3.0 frame + 3.0 root
    assert prof.dispatch_wall_s == pytest.approx(6.0)
    frames = prof.snapshot()["frames"]
    assert frames["net.maxmin_fill"]["self_s"] == pytest.approx(3.0)
    # flamegraph stacks: root-only self 3.0, nested 3.0
    stacks = {tuple(e["stack"]): e["self_s"] for e in prof.stack_table()}
    root = "repro.sim.network:NetworkFabric._tick"
    assert stacks[(root,)] == pytest.approx(3.0)
    assert stacks[(root, "net.maxmin_fill")] == pytest.approx(3.0)


def test_nested_frame_charges_its_own_subsystem():
    clock = FakeClock()
    prof = Profiler(clock=clock)
    prof.begin_event("repro.mapreduce.task", "TaskAttempt._fetch")
    clock.advance(1.0)
    # the fabric's fill runs on behalf of a task callback: its self
    # time must land on the network subsystem, not the task's
    prof.push("net.maxmin_fill", subsystem="repro.sim.network")
    clock.advance(4.0)
    prof.pop()
    prof.end_event()
    subs = prof.subsystem_table()
    assert subs["repro.sim.network"]["self_s"] == pytest.approx(4.0)
    assert subs["repro.mapreduce.task"]["self_s"] == pytest.approx(1.0)
    assert subs["repro.mapreduce.task"]["cum_s"] == pytest.approx(5.0)


def test_frames_outside_dispatch_count_as_outside_wall():
    clock = FakeClock()
    prof = Profiler(clock=clock)
    with prof.frame("net.maxmin_fill", subsystem="repro.sim.network"):
        clock.advance(2.0)
    assert prof.dispatch_wall_s == 0.0
    assert prof.outside_wall_s == pytest.approx(2.0)
    assert prof.attributed_wall_s == pytest.approx(2.0)


def test_coarse_granularity_keys_roots_by_module():
    clock = FakeClock()
    prof = Profiler(granularity="coarse", clock=clock)
    prof.begin_event("repro.sim.network", "NetworkFabric._tick")
    clock.advance(1.0)
    prof.end_event()
    snap = prof.snapshot()
    assert snap["callbacks"] == []  # per-callback table is full-only
    assert [e["stack"] for e in snap["stacks"]] == [["repro.sim.network"]]


def test_gauges_track_n_min_max_last():
    prof = Profiler()
    for value in (5.0, 1.0, 3.0):
        prof.gauge("engine.queue_depth", value)
    g = prof.snapshot()["gauges"]["engine.queue_depth"]
    assert g == {"n": 3, "mean": 3.0, "min": 1.0, "max": 5.0, "last": 3.0}


def test_profiler_rejects_bad_config():
    with pytest.raises(ValueError):
        Profiler(granularity="verbose")
    with pytest.raises(ValueError):
        Profiler(gauge_sample_every=0)


def test_callback_names_resolves_partials_and_lambdas():
    import functools

    def plain():
        pass

    module, qual = _callback_names(plain)
    assert module == __name__ and "plain" in qual
    module, qual = _callback_names(functools.partial(plain))
    assert "plain" in qual  # qualname recovered through .func

    class Odd:
        __module__ = None  # type: ignore[assignment]

        def __call__(self):
            pass

    module, qual = _callback_names(Odd())
    assert module == "unknown" and qual == "Odd"


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
def test_engine_profiles_events_and_samples_gauges():
    prof = Profiler(gauge_sample_every=1)
    sim = Simulator(seed=3)
    sim.enable_profiling(prof)
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert prof.events == 3
    assert prof.dispatch_wall_s >= 0.0
    gauges = prof.snapshot()["gauges"]
    assert gauges["engine.queue_depth"]["n"] == 3
    assert gauges["engine.live_events"]["last"] == 0.0
    sim.disable_profiling()
    assert sim.prof is None
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert prof.events == 3  # detached: no further attribution


def test_event_accounting_disable_and_reset():
    sim = Simulator(seed=1)
    sim.enable_event_accounting()
    sim.schedule(1.0, lambda: None)
    sim.run()
    first = sim.event_counts
    assert sum(first.values()) == 1
    # reset zeroes the counts but keeps accounting on: a second pass
    # on the same simulator must not double-count the first
    sim.reset_event_accounting()
    assert sim.event_counts == {}
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sum(sim.event_counts.values()) == 1
    sim.disable_event_accounting()
    assert sim.event_counts == {}
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.event_counts == {}  # off: the fast path, no counting
    sim.reset_event_accounting()  # no-op while disabled
    assert sim.event_counts == {}


def test_compaction_is_attributed_when_profiled():
    prof = Profiler()
    sim = Simulator(seed=5)
    sim.enable_profiling(prof)
    events = [sim.schedule(10.0 + i, lambda: None) for i in range(200)]
    for event in events[:150]:
        event.cancel()  # tombstones > live -> in-place compaction
    assert prof.compactions >= 1
    assert prof.snapshot()["gauges"]["engine.compact_evicted"]["max"] > 0
    sim.run()


# ----------------------------------------------------------------------
# the house invariant: profiling never perturbs same-seed results
# (satellite: parametrized across cells x observability stackups)
# ----------------------------------------------------------------------
def _run_cell_with(figure, seed, mode):
    from repro.experiments.common import resolve_scale
    from repro.sweep.cells import load

    fn = load(figure)
    scale = resolve_scale("tiny")
    if mode == "none":
        with SimCapture():
            return result_digest(fn(scale, seed))
    profiler = Profiler(
        granularity="coarse" if mode == "coarse" else "full",
        gauge_sample_every=64,
        trace_memory=(mode == "everything"),
    )
    tracing = accounting = mode == "everything"
    if mode == "everything" and not tracemalloc.is_tracing():
        tracemalloc.start()
    try:
        with SimCapture(
            tracing=tracing, accounting=accounting, profiler=profiler
        ):
            result = fn(scale, seed)
    finally:
        if mode == "everything":
            tracemalloc.stop()
    assert profiler.events > 0
    return result_digest(result)


@pytest.mark.parametrize("figure", ["fabric", "fig10"])
def test_profiling_never_perturbs_digests(figure):
    digests = {
        mode: _run_cell_with(figure, seed=1, mode=mode)
        for mode in ("none", "coarse", "full", "everything")
    }
    assert len(set(digests.values())) == 1, digests


# ----------------------------------------------------------------------
# run_profile + the ProfileReport contract
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fabric_profile():
    return run_profile(
        "fabric_micro", scale="tiny", seed=1,
        granularity="full", trace_malloc=True,
    )


def test_run_profile_report_shape(fabric_profile):
    report = fabric_profile
    assert report["schema"] == "repro.prof/1"
    assert report["cell"] == "fabric"  # alias resolved
    assert report["digest_consistent"]
    assert report["events"] > 0 and report["events_per_s"] > 0
    assert report["simulators"] == 1
    # the acceptance bar: per-subsystem self time sums (within 1%) to
    # the total attributed dispatch wall time
    total = report["dispatch_wall_s"] + report["outside_wall_s"]
    self_sum = sum(s["self_s"] for s in report["subsystems"].values())
    assert abs(self_sum - total) <= 0.01 * total
    assert "repro.sim.network" in report["subsystems"]
    assert any(
        c["name"].startswith("repro.sim.network:")
        for c in report["callbacks"]
    )
    assert report["frames"]["net.maxmin_fill"]["count"] > 0
    gauges = report["gauges"]
    for name in ("engine.queue_depth", "engine.tombstone_ratio",
                 "net.rebalance_component_flows", "net.dirty_links"):
        assert gauges[name]["n"] > 0, name
    memory = report["memory"]
    assert memory["samples"] > 0 and memory["peak_kb"] > 0
    assert memory["phases"] and all(
        p["peak_kb_max"] >= p["current_kb_mean"] > 0
        for p in memory["phases"]
    )


def test_flamegraph_exports(fabric_profile, tmp_path):
    collapsed = collapsed_stacks(fabric_profile)
    lines = collapsed.strip().splitlines()
    assert lines
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert int(weight) > 0
        assert all(part for part in stack.split(";"))
    assert any("net.maxmin_fill" in line for line in lines)

    doc = speedscope_doc(fabric_profile)
    n = validate_speedscope(doc)
    # collapsed drops sub-microsecond stacks; speedscope keeps them
    assert n >= len(lines) > 0
    total = sum(doc["profiles"][0]["weights"])
    assert total == pytest.approx(
        fabric_profile["dispatch_wall_s"] + fabric_profile["outside_wall_s"],
        rel=0.02,
    )
    path = tmp_path / "prof.speedscope.json"
    assert write_speedscope(str(path), fabric_profile) == n
    validate_speedscope(json.loads(path.read_text()))


def test_validate_speedscope_rejects_malformed(fabric_profile):
    doc = speedscope_doc(fabric_profile)
    with pytest.raises(ValueError):
        validate_speedscope({"profiles": []})
    bad = json.loads(json.dumps(doc))
    bad["profiles"][0]["samples"][0] = [len(bad["shared"]["frames"]) + 5]
    with pytest.raises(ValueError):
        validate_speedscope(bad)


def test_compare_profiles_gate(fabric_profile):
    report = fabric_profile
    failures, _notes = compare_profiles(report, report, tolerance=0.25)
    assert failures == []
    slower = dict(report, events_per_s=report["events_per_s"] * 0.1)
    failures, _notes = compare_profiles(report, slower, tolerance=0.25)
    assert any("regressed" in f for f in failures)
    perturbed = dict(report, digest_consistent=False)
    failures, _notes = compare_profiles(report, perturbed, tolerance=0.25)
    assert any("perturbed" in f for f in failures)
    with pytest.raises(ValueError):
        compare_profiles(report, report, tolerance=1.0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_prof_writes_report_and_flamegraphs(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "PROF.json"
    flame = tmp_path / "prof.flame"
    scope = tmp_path / "prof.speedscope.json"
    rc = main(["prof", "--cell", "fabric_micro", "--scale", "tiny",
               "--seed", "1", "--out", str(out),
               "--flame", str(flame), "--speedscope", str(scope)])
    assert rc == 0
    assert "per-subsystem wall time" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["schema"] == "repro.prof/1"
    assert report["digest_consistent"]
    assert flame.read_text().strip()
    validate_speedscope(json.loads(scope.read_text()))

    # self-compare passes the dossier gate with a generous tolerance
    rc = main(["prof", "--cell", "fabric_micro", "--scale", "tiny",
               "--seed", "1", "--out", "", "--tolerance", "0.9",
               "--compare", str(out)])
    assert rc == 0
    assert "prof OK" in capsys.readouterr().out
