"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interference.models import ExponentialModel, LinearModel, PiecewiseLinearModel
from repro.interference.regression import fit_line, r_squared
from repro.sim.engine import Simulator
from repro.sim.network import _HostLinks, maxmin_flow_rates
from repro.sim.pool import ResourcePool, waterfill
from repro.sim.trace import Trace

finite = st.floats(min_value=0.1, max_value=1e4, allow_nan=False)


# ----------------------------------------------------------------------
# waterfill invariants
# ----------------------------------------------------------------------
@given(
    capacity=st.floats(min_value=0.0, max_value=1e4),
    entries=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),  # weight
            st.floats(min_value=0.0, max_value=1e4),  # cap
        ),
        min_size=0,
        max_size=12,
    ),
)
def test_waterfill_conserves_and_respects_caps(capacity, entries):
    weights = [w for w, _ in entries]
    caps = [c for _, c in entries]
    rates = waterfill(capacity, weights, caps)
    assert len(rates) == len(entries)
    assert all(r >= -1e-9 for r in rates)
    # never exceed the capacity
    assert sum(rates) <= capacity + 1e-6
    # never exceed a cap
    for rate, cap in zip(rates, caps):
        assert rate <= cap + 1e-6
    # work conservation: if any entry is below its cap and has weight,
    # capacity must be (nearly) exhausted or everyone else is capped
    unsated = [
        i for i, (w, c) in enumerate(entries) if w > 1e-9 and rates[i] < c - 1e-6
    ]
    if unsated:
        assert sum(rates) >= capacity - 1e-6 or all(
            rates[i] >= caps[i] - 1e-6 for i in range(len(entries)) if i not in unsated
        )


@given(
    capacity=st.floats(min_value=1.0, max_value=100.0),
    weights=st.lists(st.floats(min_value=0.1, max_value=5.0), min_size=2, max_size=8),
)
def test_waterfill_uncapped_is_weight_proportional(capacity, weights):
    caps = [math.inf] * len(weights)
    rates = waterfill(capacity, weights, caps)
    total_w = sum(weights)
    for rate, weight in zip(rates, weights):
        assert rate == pytest_approx(capacity * weight / total_w)


def pytest_approx(value, rel=1e-6):
    import pytest

    return pytest.approx(value, rel=rel)


# ----------------------------------------------------------------------
# max-min network rates
# ----------------------------------------------------------------------
class _F:
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst


@given(
    n_hosts=st.integers(min_value=2, max_value=5),
    pairs=st.lists(
        st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4)),
        min_size=1,
        max_size=10,
    ),
    cap=st.floats(min_value=1.0, max_value=1000.0),
)
def test_maxmin_never_oversubscribes_links(n_hosts, pairs, cap):
    hosts = [f"h{i}" for i in range(n_hosts)]
    flows = [
        _F(hosts[a % n_hosts], hosts[b % n_hosts])
        for a, b in pairs
        if a % n_hosts != b % n_hosts
    ]
    if not flows:
        return
    links = {h: _HostLinks(cap, cap, 2000.0, h) for h in hosts}
    rates = maxmin_flow_rates(flows, links)
    assert all(r >= -1e-9 for r in rates)
    up = {h: 0.0 for h in hosts}
    down = {h: 0.0 for h in hosts}
    for flow, rate in zip(flows, rates):
        up[flow.src] += rate
        down[flow.dst] += rate
    for h in hosts:
        assert up[h] <= cap * (1 + 1e-6)
        assert down[h] <= cap * (1 + 1e-6)


# ----------------------------------------------------------------------
# pool conservation under random scenarios
# ----------------------------------------------------------------------
@given(
    works=st.lists(st.floats(min_value=1.0, max_value=200.0), min_size=1, max_size=6),
    capacity=st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=30, deadline=None)
def test_pool_total_time_bounded_by_serial_time(works, capacity):
    sim = Simulator(seed=1)
    pool = ResourcePool(sim, capacity)
    finish = []
    for work in works:
        pool.add(work, on_complete=lambda: finish.append(sim.now))
    sim.run()
    assert len(finish) == len(works)
    serial = sum(works) / capacity
    # the pool is work-conserving: everything done exactly at the serial
    # completion bound (equal sharing never wastes capacity)
    assert max(finish) == pytest_approx(serial, rel=1e-6)


# ----------------------------------------------------------------------
# regression sanity
# ----------------------------------------------------------------------
@given(
    slope=st.floats(min_value=-5, max_value=5),
    intercept=st.floats(min_value=-10, max_value=10),
    # integer xs keep the spread well away from fit_line's degenerate
    # zero-variance fallback
    xs=st.lists(st.integers(min_value=-100, max_value=100), min_size=3, max_size=30, unique=True),
)
def test_fit_line_recovers_exact_lines(slope, intercept, xs):
    xs = [float(x) for x in xs]
    ys = [slope * x + intercept for x in xs]
    got_slope, got_icpt = fit_line(xs, ys)
    assert abs(got_slope - slope) < 1e-6 + 1e-6 * abs(slope)
    assert abs(got_icpt - intercept) < 1e-4 + 1e-6 * abs(intercept)
    assert r_squared(ys, [got_slope * x + got_icpt for x in xs]) > 1 - 1e-9


@given(
    xs=st.lists(st.floats(min_value=0, max_value=100), min_size=6, max_size=40, unique=True),
)
def test_piecewise_never_worse_than_single_line(xs):
    xs = sorted(xs)
    ys = [0.5 * x + 1 for x in xs]
    single = LinearModel().fit(xs, ys)
    piece = PiecewiseLinearModel().fit(xs, ys)
    err_single = sum((single.predict(x) - y) ** 2 for x, y in zip(xs, ys))
    err_piece = sum((piece.predict(x) - y) ** 2 for x, y in zip(xs, ys))
    assert err_piece <= err_single + 1e-6


@given(
    values=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
)
def test_trace_mean_within_bounds(values):
    trace = Trace()
    for i, v in enumerate(values):
        trace.record(float(i), v)
    assert min(values) - 1e-9 <= trace.mean() <= max(values) + 1e-9


# ----------------------------------------------------------------------
# indexed max-min fill and incremental rebalance vs the pure reference
# ----------------------------------------------------------------------
@given(
    n_hosts=st.integers(min_value=2, max_value=6),
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=14,
    ),
    caps=st.lists(
        st.floats(min_value=1.0, max_value=1000.0), min_size=6, max_size=6
    ),
    scales=st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=6, max_size=6
    ),
)
@settings(max_examples=60, deadline=None)
def test_maxmin_fast_is_bit_identical_to_reference(n_hosts, pairs, caps, scales):
    from repro.sim.network import maxmin_flow_rates_fast

    hosts = [f"h{i}" for i in range(n_hosts)]
    flows = [
        _F(hosts[a % n_hosts], hosts[b % n_hosts])
        for a, b in pairs
        if a % n_hosts != b % n_hosts
    ]
    if not flows:
        return
    links = {}
    for i, h in enumerate(hosts):
        links[h] = _HostLinks(caps[i], caps[(i + 1) % 6], 2000.0, h)
        links[h].nic_scale = scales[i]
    reference = maxmin_flow_rates(flows, links)
    fast = maxmin_flow_rates_fast(flows, links)
    assert fast == reference  # bit-for-bit, not approx


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_incremental_rebalance_matches_pure_reference(seed):
    """Drive a fabric through a random start/cancel/advance/degrade/
    partition/heal sequence; after every step the incremental component
    fill must give every flow the exact rate the from-scratch reference
    assigns (stalled cross-partition flows pinned at zero, loopback
    flows sharing their host channel equally)."""
    import random as random_mod

    from repro.sim.network import NetworkFabric, maxmin_flow_rates

    rng = random_mod.Random(seed)
    sim = Simulator(seed=seed)
    fabric = NetworkFabric(sim)
    hosts = [f"h{i}" for i in range(rng.randint(2, 6))]
    for host in hosts:
        fabric.register_host(
            host,
            up_mbps=rng.choice([50.0, 100.0, 400.0]),
            down_mbps=rng.choice([50.0, 100.0, 400.0]),
            loopback_mbps=2000.0,
        )
    live = []

    def check() -> None:
        cross = [f for f in fabric._flows if not f.done]
        expected_live = []
        for flow in cross:
            if fabric.is_blocked(flow.src, flow.dst):
                assert flow.rate == 0.0
            else:
                expected_live.append(flow)
        reference = maxmin_flow_rates(expected_live, fabric._links)
        for flow, want in zip(expected_live, reference):
            assert flow.rate == want  # bit-for-bit
        loop_users = {}
        for flow in fabric._loop_flows:
            loop_users[flow.src] = loop_users.get(flow.src, 0) + 1
        for flow in fabric._loop_flows:
            assert flow.rate == fabric._links[flow.src].loopback / loop_users[flow.src]

    for _ in range(40):
        op = rng.random()
        if op < 0.45 or not live:
            src = rng.choice(hosts)
            dst = rng.choice(hosts)
            flow = fabric.start_flow(
                src, dst, rng.uniform(5.0, 500.0), on_complete=lambda: None
            )
            live.append(flow)
        elif op < 0.6:
            flow = live.pop(rng.randrange(len(live)))
            if not flow.done:
                fabric.cancel_flow(flow)
        elif op < 0.8:
            sim.run(until=sim.now + rng.uniform(0.01, 2.0))
        elif op < 0.9:
            fabric.set_nic_scale(rng.choice(hosts), rng.choice([0.25, 0.5, 1.0]))
        elif fabric.partitioned:
            fabric.heal_partition()
        elif len(hosts) >= 2:
            cut = rng.randint(1, len(hosts) - 1)
            shuffled = hosts[:]
            rng.shuffle(shuffled)
            fabric.partition(shuffled[:cut], shuffled[cut:])
        live = [f for f in live if not f.done]
        check()
    sim.run()
