"""Tests for the metrics layer."""

import math

import pytest

from repro.metrics.collector import UtilizationCollector
from repro.metrics.energy import EnergyReport, perf_per_energy
from repro.metrics.report import format_series, format_table, sla_latency_summary


def test_collector_samples_all_metrics(sim, native_cluster):
    collector = UtilizationCollector(sim, native_cluster, interval_s=1.0)
    collector.start()
    native_cluster.pms[0].native.run_cpu(math.inf, cap=2.0)
    sim.run(until=10.0)
    collector.stop()
    for key in ("cpu", "mem", "io"):
        assert key in collector.traces
        assert len(collector.traces[key]) >= 10
    assert collector.mean("cpu") > 0.0


def test_collector_per_machine_traces(sim, native_cluster):
    collector = UtilizationCollector(sim, native_cluster, interval_s=1.0, per_machine=True)
    collector.start()
    sim.run(until=3.0)
    collector.stop()
    assert "cpu:pm00" in collector.traces


def test_collector_stop_records_final_sample(sim, native_cluster):
    collector = UtilizationCollector(sim, native_cluster, interval_s=10.0)
    collector.start()
    sim.schedule(25.0, collector.stop)
    sim.run()
    # cadence samples at 0/10/20 plus the closing sample at stop time
    assert collector.traces["cpu"].times == [0.0, 10.0, 20.0, 25.0]


def test_collector_stop_on_cadence_tick_does_not_duplicate(sim, native_cluster):
    collector = UtilizationCollector(sim, native_cluster, interval_s=10.0)
    collector.start()
    sim.schedule(20.0, collector.stop)
    sim.run()
    assert collector.traces["cpu"].times == [0.0, 10.0, 20.0]


def test_collector_restarts_after_stop(sim, native_cluster):
    collector = UtilizationCollector(sim, native_cluster, interval_s=10.0)
    collector.start()
    sim.schedule(15.0, collector.stop)
    sim.schedule(15.0, collector.start)
    sim.schedule(40.0, collector.stop)
    sim.run()
    times = collector.traces["cpu"].times
    assert times == [0.0, 10.0, 15.0, 25.0, 35.0, 40.0]
    assert len(times) == len(set(times))


def test_collector_publishes_into_registry(sim, native_cluster):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry(clock=lambda: sim.now)
    collector = UtilizationCollector(
        sim, native_cluster, interval_s=10.0, registry=registry
    )
    collector.start()
    sim.run(until=20.0)
    collector.stop()
    assert registry.timeseries("cpu") is collector.traces["cpu"]
    assert "cpu" in registry.snapshot()["series"]


def test_perf_per_energy_ordering():
    fast_cheap = perf_per_energy(100.0, 1000.0)
    slow_cheap = perf_per_energy(200.0, 1000.0)
    fast_dear = perf_per_energy(100.0, 2000.0)
    assert fast_cheap > slow_cheap
    assert fast_cheap > fast_dear
    assert perf_per_energy(0.0, 100.0) == 0.0


def test_energy_report_normalization():
    reports = [
        EnergyReport("a", mean_jct_s=100, energy_joules=1000, servers=8, utilization=0.5),
        EnergyReport("b", mean_jct_s=200, energy_joules=500, servers=4, utilization=1.0),
    ]
    rows = EnergyReport.normalize(reports)
    assert rows[0]["servers"] == 1.0
    assert rows[1]["servers"] == 0.5
    assert max(r["perf_per_energy"] for r in rows) == pytest.approx(1.0)
    assert EnergyReport.normalize([]) == []


def test_energy_report_kwh():
    report = EnergyReport("x", 1, 3.6e6, 1, 0.5)
    assert report.energy_kwh == pytest.approx(1.0)


def test_format_table_alignment():
    text = format_table(["name", "value"], [["sort", 1.23456], ["x", 2]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.235" in text
    with pytest.raises(ValueError):
        format_table(["a"], [["x", "y"]])


def test_format_series():
    text = format_series("gains", {"wmix-1": 0.25, "n": 3})
    assert text.startswith("gains:")
    assert "wmix-1=0.250" in text
    assert "n=3" in text
