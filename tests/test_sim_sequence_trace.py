"""Tests for stage chaining and trace recording."""

import pytest

from repro.sim.sequence import Join, chain, join
from repro.sim.trace import Trace, TraceSet, percentile


# ----------------------------------------------------------------------
# chain / join
# ----------------------------------------------------------------------
def test_chain_runs_stages_in_order():
    order = []

    def stage(tag):
        def run(done):
            order.append(tag)
            done()

        return run

    chain([stage(1), stage(2), stage(3)], lambda: order.append("end"))
    assert order == [1, 2, 3, "end"]


def test_chain_empty_fires_immediately():
    fired = []
    chain([], lambda: fired.append(True))
    assert fired == [True]


def test_join_waits_for_all_arms():
    fired = []
    arms = join(3, lambda: fired.append(True))
    arms[0]()
    arms[1]()
    assert fired == []
    arms[2]()
    assert fired == [True]


def test_join_zero_arms_fires_immediately():
    fired = []
    join(0, lambda: fired.append(True))
    assert fired == [True]


def test_join_arm_double_call_rejected():
    arms = join(2, lambda: None)
    arms[0]()
    with pytest.raises(RuntimeError):
        arms[0]()


def test_join_dynamic_arms():
    fired = []
    barrier = Join(lambda: fired.append(True))
    first = barrier.expect()
    first()
    second = barrier.expect()
    barrier.seal()
    assert fired == []
    second()
    assert fired == [True]


# ----------------------------------------------------------------------
# Trace
# ----------------------------------------------------------------------
def test_trace_record_and_stats():
    trace = Trace("t")
    for t, v in [(0, 1.0), (1, 3.0), (2, 5.0)]:
        trace.record(t, v)
    assert len(trace) == 3
    assert trace.mean() == pytest.approx(3.0)
    assert trace.max() == 5.0
    assert trace.min() == 1.0
    assert trace.last == 5.0


def test_trace_rejects_out_of_order():
    trace = Trace()
    trace.record(5.0, 1.0)
    with pytest.raises(ValueError):
        trace.record(4.0, 1.0)


def test_trace_time_weighted_mean():
    trace = Trace()
    trace.record(0.0, 0.0)
    trace.record(8.0, 10.0)  # value 0 held 8s, value 10 held 2s
    assert trace.time_weighted_mean(until=10.0) == pytest.approx(2.0)


def test_trace_value_at_step_interpolation():
    trace = Trace()
    trace.record(1.0, 10.0)
    trace.record(3.0, 20.0)
    assert trace.value_at(0.5) is None
    assert trace.value_at(1.5) == 10.0
    assert trace.value_at(3.5) == 20.0


def test_trace_window():
    trace = Trace()
    for t in range(10):
        trace.record(float(t), float(t))
    window = trace.window(3.0, 6.0)
    assert window.times == [3.0, 4.0, 5.0, 6.0]


def test_traceset_get_and_record():
    traces = TraceSet()
    traces.record("cpu", 0.0, 0.5)
    traces.record("cpu", 1.0, 0.7)
    assert "cpu" in traces
    assert len(traces["cpu"]) == 2
    assert traces.names() == ["cpu"]


def test_empty_trace_stats_are_zero():
    trace = Trace()
    assert trace.mean() == 0.0
    assert trace.max() == 0.0
    assert trace.time_weighted_mean() == 0.0
    assert trace.last is None


def test_window_of_empty_trace_is_empty():
    assert len(Trace().window(0.0, 100.0)) == 0


def test_window_is_inclusive_on_both_boundaries():
    trace = Trace()
    for t in (1.0, 2.0, 3.0):
        trace.record(t, t)
    assert trace.window(1.0, 3.0).times == [1.0, 2.0, 3.0]
    assert trace.window(1.5, 2.5).times == [2.0]
    assert trace.window(4.0, 9.0).times == []


def test_value_at_exact_sample_time():
    trace = Trace()
    trace.record(1.0, 10.0)
    trace.record(3.0, 20.0)
    assert trace.value_at(1.0) == 10.0
    assert trace.value_at(3.0) == 20.0


def test_value_at_on_empty_trace():
    assert Trace().value_at(0.0) is None


# ----------------------------------------------------------------------
# percentile
# ----------------------------------------------------------------------
def test_percentile_interpolates_linearly():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 100.0) == 40.0
    assert percentile(values, 50.0) == pytest.approx(25.0)
    assert percentile(values, 95.0) == pytest.approx(38.5)


def test_percentile_is_order_insensitive():
    assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0


def test_percentile_single_sample():
    assert percentile([7.0], 99.0) == 7.0


def test_percentile_empty_is_zero():
    assert percentile([], 95.0) == 0.0


def test_percentile_rejects_bad_q():
    with pytest.raises(ValueError):
        percentile([1.0], -1.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)


def test_trace_percentile_delegates():
    trace = Trace("lat")
    for t, v in enumerate([10.0, 20.0, 30.0, 40.0]):
        trace.record(float(t), v)
    assert trace.percentile(50.0) == pytest.approx(25.0)
    assert Trace().percentile(99.0) == 0.0
