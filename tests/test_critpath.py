"""repro.obs.critpath: blame attribution from traced runs.

The load-bearing property throughout: for every succeeded job the blame
category durations sum *exactly* to the job makespan (the decomposition
tiles [submit, finish]), across schedulers, virtualized placements,
live migrations and fault injection.
"""

import json

import pytest

from repro.chaos import ChaosInjector, FaultSchedule, FaultSpec
from repro.cluster.cluster import Cluster
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.schedulers import FairScheduler, FIFOScheduler
from repro.obs.critpath import (
    CATEGORIES,
    REPORT_SCHEMA,
    blame_from_obs,
    blame_summary,
    build_blame,
    canonical_json,
    chrome_blame_events,
    extend_chrome_trace,
    format_blame,
    merge_blame,
)
from repro.obs.export import chrome_trace, collect_events, validate_chrome_trace
from repro.sim.engine import Simulator
from repro.virt.migration import LiveMigration
from repro.workloads.specs import make_job


def assert_exact_tiling(report):
    """Check the sum-to-makespan invariant and the path tiling per job."""
    assert report["schema"] == REPORT_SCHEMA
    assert report["jobs"], "expected at least one succeeded job"
    for job in report["jobs"]:
        assert set(job["blame_s"]) == set(CATEGORIES)
        total = sum(job["blame_s"].values())
        assert total == pytest.approx(job["makespan_s"], abs=1e-6)
        if job["makespan_s"] > 0:
            assert sum(job["blame_pct"].values()) == pytest.approx(
                100.0, abs=1e-4
            )
        # the path segments tile [submit, finish] without gaps/overlaps
        path = job["path"]
        assert path
        assert path[0]["start"] == pytest.approx(job["submit_s"], abs=1e-6)
        assert path[-1]["end"] == pytest.approx(job["finish_s"], abs=1e-6)
        for prev, cur in zip(path, path[1:]):
            assert cur["start"] == pytest.approx(prev["end"], abs=1e-6)
            assert cur["category"] in CATEGORIES


def _native_run(scheduler, seed=11, n=4, jobs=2):
    sim = Simulator(seed=seed)
    sim.obs.enable_tracing()
    cluster = Cluster.native(sim, n)
    mr = MapReduceCluster(
        sim, cluster.fabric, cluster.native_contexts(), scheduler=scheduler
    )
    # two overlapping jobs force slot contention -> scheduling waits
    done = mr.run_jobs(
        [make_job("Sort", input_gb=0.5, num_reducers=2, name=f"j{i}")
         for i in range(jobs)]
    )
    assert all(job.done for job in done)
    return sim


# ----------------------------------------------------------------------
# sum-to-makespan property across schedulers and deployments
# ----------------------------------------------------------------------
def test_blame_sums_to_makespan_fifo():
    sim = _native_run(FIFOScheduler())
    report = blame_from_obs(sim.obs)
    assert report["total"]["jobs"] == 2
    assert_exact_tiling(report)
    # contended FIFO jobs must show some non-compute blame
    assert report["total"]["blame_s"]["compute"] > 0.0


def test_blame_sums_to_makespan_fair():
    sim = _native_run(FairScheduler())
    report = blame_from_obs(sim.obs)
    assert report["total"]["jobs"] == 2
    assert_exact_tiling(report)


def test_blame_sums_to_makespan_migration_heavy():
    sim = Simulator(seed=5)
    sim.obs.enable_tracing()
    cluster = Cluster.virtual(sim, 4, 2)
    spare = cluster.add_pm("spare")
    mr = MapReduceCluster(sim, cluster.fabric, list(cluster.vms))
    # migrate a busy VM mid-job so stop-and-copy pauses hit the path
    vm = cluster.vms[0]
    sim.schedule_at(2.0, lambda: LiveMigration(sim, cluster.fabric, vm, spare))
    job = mr.run_job(make_job("Sort", input_gb=1.0, num_reducers=4))
    assert job.done
    report = blame_from_obs(sim.obs)
    assert_exact_tiling(report)
    # a virtualized run pays the virtualization tax somewhere
    assert report["total"]["blame_s"]["virt_overhead"] > 0.0


def test_blame_sums_to_makespan_chaos():
    sim = Simulator(seed=9)
    sim.obs.enable_tracing()
    cluster = Cluster.native(sim, 6)
    mr = MapReduceCluster(sim, cluster.fabric, cluster.native_contexts())
    victim = cluster.native_contexts()[0]
    schedule = FaultSchedule(
        faults=(FaultSpec(kind="node_crash", at=3.0, duration=8.0,
                          target=victim.name),),
        horizon=200.0,
    )
    ChaosInjector(sim, mr, schedule).start()
    job = mr.run_job(make_job("Sort", input_gb=1.0, num_reducers=4))
    assert job.done
    report = blame_from_obs(sim.obs)
    assert_exact_tiling(report)
    (doc,) = report["jobs"]
    # the crash killed attempts / lost map outputs; the report must
    # carry the causal instants even when re-runs dodge the final path
    assert doc["causal"]["reexecute_instants"] >= 0
    assert sim.obs.metrics.counters()["fault.node_failures"] == 1


def test_virtual_run_splits_disk_and_virt_blame():
    sim = Simulator(seed=3)
    sim.obs.enable_tracing()
    cluster = Cluster.virtual(sim, 4, 2)
    mr = MapReduceCluster(sim, cluster.fabric, list(cluster.vms))
    job = mr.run_job(make_job("Sort", input_gb=0.5, num_reducers=2))
    assert job.done
    report = blame_from_obs(sim.obs)
    assert_exact_tiling(report)
    totals = blame_summary(report)
    assert totals["virt_overhead"] > 0.0
    assert totals["disk_contention"] > 0.0
    assert totals["compute"] > 0.0


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_blame_report_byte_identical_across_same_seed_runs():
    first = canonical_json(blame_from_obs(_native_run(FIFOScheduler()).obs))
    second = canonical_json(blame_from_obs(_native_run(FIFOScheduler()).obs))
    assert first == second


def test_chaos_result_identical_tracing_on_or_off():
    def one_run(tracing):
        sim = Simulator(seed=9)
        if tracing:
            sim.obs.enable_tracing()
        cluster = Cluster.native(sim, 6)
        mr = MapReduceCluster(sim, cluster.fabric, cluster.native_contexts())
        schedule = FaultSchedule(
            faults=(FaultSpec(kind="node_crash", at=3.0, duration=8.0,
                              target=cluster.native_contexts()[0].name),),
            horizon=200.0,
        )
        ChaosInjector(sim, mr, schedule).start()
        return mr.run_job(make_job("Sort", input_gb=1.0, num_reducers=4))

    assert one_run(False).jct == one_run(True).jct


# ----------------------------------------------------------------------
# report structure, merging, degenerate inputs
# ----------------------------------------------------------------------
def test_empty_events_give_empty_report():
    report = build_blame([])
    assert report["jobs"] == [] and report["skipped"] == []
    assert report["total"]["jobs"] == 0
    assert report["total"]["makespan_s"] == 0.0
    assert all(v == 0.0 for v in report["total"]["blame_pct"].values())
    assert format_blame(report) == "(no completed jobs in trace)"
    json.loads(canonical_json(report))  # serializable


def test_unfinished_job_is_skipped_not_blamed():
    sim = Simulator(seed=2)
    sim.obs.enable_tracing()
    cluster = Cluster.native(sim, 4)
    mr = MapReduceCluster(sim, cluster.fabric, cluster.native_contexts())
    mr.submit(make_job("Sort", input_gb=2.0, num_reducers=2))
    sim.run(until=1.0)  # stop mid-flight: the job span is still open
    report = blame_from_obs(sim.obs)
    assert report["jobs"] == []
    (skip,) = report["skipped"]
    assert skip["state"] == "open"
    mr.jt.shutdown()


def test_merge_blame_reaccumulates_totals():
    a = blame_from_obs(_native_run(FIFOScheduler(), seed=11).obs)
    b = blame_from_obs(_native_run(FIFOScheduler(), seed=12).obs)
    merged = merge_blame([a, b])
    assert merged["total"]["jobs"] == a["total"]["jobs"] + b["total"]["jobs"]
    assert merged["total"]["makespan_s"] == pytest.approx(
        a["total"]["makespan_s"] + b["total"]["makespan_s"], abs=1e-6
    )
    for category in CATEGORIES:
        assert merged["total"]["blame_s"][category] == pytest.approx(
            a["total"]["blame_s"][category] + b["total"]["blame_s"][category],
            abs=1e-6,
        )


def test_chrome_blame_events_extend_a_valid_trace():
    sim = _native_run(FIFOScheduler())
    events = collect_events(sim.obs)
    report = build_blame(events)
    doc = chrome_trace(events)
    n_before = len(doc["traceEvents"])
    extend_chrome_trace(doc, report)
    assert validate_chrome_trace(doc) > n_before
    extra = doc["traceEvents"][n_before:]
    assert extra[0]["args"]["name"] == "critpath"
    slice_names = {e["name"] for e in extra if e["ph"] == "X"}
    assert slice_names <= set(CATEGORIES)
    assert len(chrome_blame_events(report)) == len(extra)


def test_format_blame_renders_tables():
    report = blame_from_obs(_native_run(FIFOScheduler()).obs)
    text = format_blame(report)
    assert "attempts on path" in text
    assert "compute" in text
    assert "all 2 jobs" in text  # totals table for multi-job traces
