"""Tests for Phase I: profiling database and placement."""

import pytest

from repro.core.placement import PhaseOneScheduler, Placement
from repro.core.profiling import JobProfiler, ProfileDatabase, ProfileRecord
from repro.workloads.specs import make_job


def record(bench="Sort", virtual=True, cluster=8, gb=2.0, jct=100.0, m=60.0, r=40.0):
    return ProfileRecord(bench, virtual, cluster, gb, jct, m, r)


@pytest.fixture
def db():
    db = ProfileDatabase()
    # linear-in-data family at cluster 8: jct = 50*gb
    for gb in (1.0, 2.0, 3.0):
        db.add(record(gb=gb, jct=50 * gb, m=30 * gb, r=20 * gb))
    # cluster-size family at 2 GB (the cluster-8 record matches the
    # data family's 2 GB point so averaging keeps it consistent)
    for cluster, m, r in ((4, 90.0, 45.0), (8, 60.0, 40.0), (16, 30.0, 30.0)):
        db.add(record(cluster=cluster, gb=2.0, jct=m + r, m=m, r=r))
    return db


def test_exact_lookup(db):
    est = db.estimate("Sort", True, 8, 2.0)
    assert est.method == "exact"
    assert est.jct_s == pytest.approx(100.0)


def test_repeated_runs_are_averaged():
    db = ProfileDatabase()
    db.add(record(jct=90.0))
    db.add(record(jct=110.0))
    assert db.estimate("Sort", True, 8, 2.0).jct_s == pytest.approx(100.0)
    assert len(db) == 2


def test_data_extrapolation_is_linear(db):
    est = db.estimate("Sort", True, 8, 5.0)
    assert est.method == "data-extrapolation"
    assert est.jct_s == pytest.approx(250.0, rel=0.01)


def test_cluster_extrapolation_inverse_map(db):
    est = db.estimate("Sort", True, 32, 2.0)
    assert est.method == "cluster-extrapolation"
    # map phase ~ a/c + b fitted through (4,90),(8,60),(16,30)
    assert est.map_time_s < 30.0 + 2.0
    # reduce phase clamps to nearest profiled size
    assert est.reduce_time_s == pytest.approx(30.0)


def test_cluster_interpolation_reduce_piecewise(db):
    est = db.estimate("Sort", True, 12, 2.0)
    assert est.reduce_time_s == pytest.approx((40.0 + 30.0) / 2.0)


def test_composed_estimate_when_nothing_matches(db):
    est = db.estimate("Sort", True, 6, 7.0)
    assert est.method in ("composed", "data-extrapolation", "cluster-extrapolation")
    assert est.jct_s > 0


def test_unknown_benchmark_raises(db):
    with pytest.raises(KeyError):
        db.estimate("NoSuch", True, 8, 1.0)


def test_profiler_runs_real_training_simulations():
    profiler = JobProfiler(repeats=2)
    rec = profiler.profile("Sort", 0.5, 4, virtual=True)
    assert rec.jct_s > 0
    assert rec.map_time_s > 0
    assert len(profiler.db) == 1  # averaged into one keyed entry


def test_profiler_estimates_close_to_actual():
    profiler = JobProfiler(repeats=1)
    profiler.train_grid("Sort", [3.0, 4.0, 6.0], [4], virtual=True)
    actual = profiler.profile("Sort", 5.0, 4, virtual=True)
    est = profiler.db.estimate("Sort", True, 4, 5.0)
    # note: the 5.0 profile itself is exact-matched; remove indirection
    assert est.jct_s == pytest.approx(actual.jct_s, rel=0.25)


# ----------------------------------------------------------------------
# Algorithm 2 placement
# ----------------------------------------------------------------------
def scheduler_with(db, threshold=0.15):
    return PhaseOneScheduler(db, physical_cluster_size=8, virtual_cluster_size=8,
                             overhead_threshold=threshold)


def test_transactional_always_virtual(db):
    assert scheduler_with(db).place_transactional("rubis") is Placement.VIRTUAL


def test_deadline_miss_goes_physical(db):
    spec = make_job("Sort", input_gb=2.0, desired_jct_s=50.0)  # est_v = 100
    assert scheduler_with(db).place_batch(spec) is Placement.PHYSICAL


def test_deadline_met_stays_virtual(db):
    spec = make_job("Sort", input_gb=2.0, desired_jct_s=500.0)
    assert scheduler_with(db).place_batch(spec) is Placement.VIRTUAL


def test_overhead_threshold_classification(db):
    # native profile at same config: 60 vs virtual 100 -> 66% overhead
    db.add(record(virtual=False, jct=60.0, m=40.0, r=20.0))
    spec = make_job("Sort", input_gb=2.0)  # no deadline
    sched = scheduler_with(db)
    assert sched.place_batch(spec) is Placement.PHYSICAL
    lax = scheduler_with(db, threshold=1.0)
    assert lax.place_batch(spec) is Placement.VIRTUAL


def test_unprofiled_job_defaults_physical(db):
    spec = make_job("Kmeans", input_gb=1.0, desired_jct_s=100.0)
    sched = scheduler_with(db)
    assert sched.place_batch(spec) is Placement.PHYSICAL
    assert sched.decisions[-1].reason == "unprofiled"


def test_decisions_are_audited(db):
    sched = scheduler_with(db)
    sched.place_batch(make_job("Sort", input_gb=2.0, desired_jct_s=50.0))
    assert len(sched.decisions) == 1
    decision = sched.decisions[0]
    assert decision.placement is Placement.PHYSICAL
    assert decision.estimate_virtual is not None
