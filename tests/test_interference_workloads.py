"""Tests for regression models and workload specs."""

import math
import random

import pytest

from repro.interference.models import (
    ExponentialModel,
    InterferenceModelSet,
    LinearModel,
    PiecewiseLinearModel,
)
from repro.interference.regression import fit_line, r_squared
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.mixes import ALL_MIXES, WMIX_1, WMIX_2, WorkloadMix
from repro.workloads.specs import ALL_BENCHMARKS, BENCHMARKS_BY_NAME, make_job


# ----------------------------------------------------------------------
# regression utilities
# ----------------------------------------------------------------------
def test_fit_line_exact():
    slope, icpt = fit_line([0, 1, 2, 3], [1, 3, 5, 7])
    assert slope == pytest.approx(2.0)
    assert icpt == pytest.approx(1.0)


def test_fit_line_degenerate_inputs():
    assert fit_line([5.0], [3.0]) == (0.0, 3.0)
    assert fit_line([2.0, 2.0], [1.0, 3.0]) == (0.0, 2.0)
    with pytest.raises(ValueError):
        fit_line([], [])
    with pytest.raises(ValueError):
        fit_line([1, 2], [1])


def test_r_squared_perfect_and_poor():
    assert r_squared([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)
    assert r_squared([1, 2, 3], [2, 2, 2]) == pytest.approx(0.0)


# ----------------------------------------------------------------------
# model families
# ----------------------------------------------------------------------
def test_linear_model_fit_predict():
    model = LinearModel().fit([0, 1, 2], [1.0, 1.5, 2.0])
    assert model.predict(4) == pytest.approx(3.0)
    assert model.score([0, 1, 2], [1.0, 1.5, 2.0]) == pytest.approx(1.0)


def test_piecewise_finds_breakpoint():
    xs = list(range(20))
    ys = [1.0] * 10 + [1.0 + 0.5 * (x - 9) for x in range(10, 20)]
    model = PiecewiseLinearModel().fit(xs, ys)
    assert 7 <= model.breakpoint <= 11
    assert model.predict(5) == pytest.approx(1.0, abs=0.05)
    assert model.predict(19) == pytest.approx(6.0, abs=0.3)


def test_piecewise_degenerates_with_few_points():
    model = PiecewiseLinearModel().fit([0, 1, 2], [1, 2, 3])
    assert model.fitted
    assert model.predict(1.5) == pytest.approx(2.5, abs=0.01)


def test_exponential_model_recovers_curve():
    xs = [float(x) for x in range(0, 60, 5)]
    ys = [1.0 + 0.2 * math.exp(0.05 * x) for x in xs]
    model = ExponentialModel().fit(xs, ys)
    assert model.b > 0  # growth recovered
    preds = [model.predict(x) for x in xs]
    assert preds == sorted(preds)
    assert model.predict(55) == pytest.approx(ys[-1], rel=0.35)


def test_model_set_slowdown_composition():
    models = InterferenceModelSet()
    assert models.slowdown(cpu_util=1.0, io_rate=10.0) == 1.0  # unfitted
    models.cpu.fit([0, 1, 2], [1.0, 1.5, 2.0])
    models.io.fit([0, 10, 20, 30], [1.0, 1.2, 1.6, 2.5])
    combined = models.slowdown(cpu_util=2.0, io_rate=30.0)
    assert combined >= 2.0  # both factors multiply
    assert models.slowdown() == 1.0


def test_model_set_never_speeds_up():
    models = InterferenceModelSet()
    models.cpu.fit([0, 1], [0.1, 0.2])  # predicts < 1
    assert models.slowdown(cpu_util=0.5) == 1.0


# ----------------------------------------------------------------------
# workload specs and mixes
# ----------------------------------------------------------------------
def test_six_benchmarks_defined():
    assert len(ALL_BENCHMARKS) == 6
    assert set(BENCHMARKS_BY_NAME) == {
        "Twitter", "Wcount", "PiEst", "DistGrep", "Sort", "Kmeans",
    }


def test_resource_classes_match_paper():
    assert BENCHMARKS_BY_NAME["PiEst"].resource_class == "cpu"
    assert BENCHMARKS_BY_NAME["Kmeans"].resource_class == "cpu"
    assert BENCHMARKS_BY_NAME["Sort"].resource_class == "io"
    assert BENCHMARKS_BY_NAME["DistGrep"].resource_class == "io"
    assert BENCHMARKS_BY_NAME["Twitter"].resource_class == "mixed"
    assert BENCHMARKS_BY_NAME["Wcount"].resource_class == "mixed"


def test_sort_moves_every_byte():
    sort = BENCHMARKS_BY_NAME["Sort"]
    assert sort.map_selectivity == 1.0
    assert sort.output_ratio == 1.0


def test_mix_fractions():
    assert WMIX_1.counts(10) == (5, 5)
    assert WMIX_2.counts(10) == (2, 8)
    with pytest.raises(ValueError):
        WorkloadMix("bad", 0.6, 0.6)


def test_generator_is_deterministic():
    a = WorkloadGenerator(random.Random(1)).batch_stream(5)
    b = WorkloadGenerator(random.Random(1)).batch_stream(5)
    assert [(s.profile.name, s.input_gb) for s in a] == [
        (s.profile.name, s.input_gb) for s in b
    ]


def test_generator_respects_scale():
    stream = WorkloadGenerator(random.Random(2), input_scale=0.1).batch_stream(20)
    for spec in stream:
        assert spec.input_gb <= 25.0 * 0.1 * 1.25 + 1e-9


def test_generator_mixed_stream_counts():
    gen = WorkloadGenerator(random.Random(3))
    interactive, batch = gen.mixed_stream(WMIX_2, 10)
    assert interactive == 2
    assert len(batch) == 8
