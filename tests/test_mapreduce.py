"""Tests for the MapReduce runtime."""

import pytest

from repro.cluster.cluster import Cluster
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.job import BenchmarkProfile, JobSpec, JobState
from repro.mapreduce.schedulers import FairScheduler, FIFOScheduler
from repro.mapreduce.task import TaskKind
from repro.sim.engine import Simulator
from repro.workloads.specs import SORT, make_job


@pytest.fixture
def mr(sim, native_cluster):
    return MapReduceCluster(sim, native_cluster.fabric, native_cluster.native_contexts())


# ----------------------------------------------------------------------
# specs and profiles
# ----------------------------------------------------------------------
def test_jobspec_validation():
    with pytest.raises(ValueError):
        JobSpec("x", SORT, input_gb=0)
    with pytest.raises(ValueError):
        JobSpec("x", SORT, input_gb=1, num_maps=0)


def test_profile_validation():
    with pytest.raises(ValueError):
        BenchmarkProfile("x", -1, 0, 0, 0)
    with pytest.raises(ValueError):
        BenchmarkProfile("x", 0, 0, 0, 0, resource_class="weird")


def test_make_job_defaults():
    spec = make_job("Sort")
    assert spec.input_gb == 20.0
    assert spec.profile is SORT
    spec = make_job("PiEst")
    assert spec.num_maps == 16
    with pytest.raises(KeyError):
        make_job("NoSuch")


# ----------------------------------------------------------------------
# basic execution
# ----------------------------------------------------------------------
def test_job_runs_to_completion(mr):
    job = mr.run_job(make_job("Sort", input_gb=0.5, num_reducers=4))
    assert job.state is JobState.SUCCEEDED
    assert job.jct > 0
    assert job.map_phase_time > 0
    assert job.reduce_phase_time > 0
    assert all(t.completed for t in job.map_tasks + job.reduce_tasks)


def test_map_count_follows_blocks(mr):
    job = mr.run_job(make_job("Sort", input_gb=0.5, num_reducers=2))
    assert len(job.map_tasks) == 8  # 512 MB / 64 MB


def test_num_maps_override(mr):
    job = mr.run_job(make_job("PiEst", num_maps=6, num_reducers=2))
    assert len(job.map_tasks) == 6


def test_reducers_default_to_tracker_count(mr):
    job = mr.run_job(make_job("Sort", input_gb=0.25))
    assert len(job.reduce_tasks) == 4


def test_output_written_to_hdfs(mr):
    job = mr.run_job(make_job("Sort", input_gb=0.25, num_reducers=2))
    out_files = [n for n in mr.fs.namenode.files if n.endswith(".out")]
    assert len(out_files) == 2
    total = sum(mr.fs.namenode.file_size_mb(f) for f in out_files)
    assert total == pytest.approx(job.output_mb, rel=0.01)


def test_larger_input_takes_longer(mr):
    a = mr.run_job(make_job("Sort", input_gb=0.25, num_reducers=4, name="a"))
    b = mr.run_job(make_job("Sort", input_gb=1.0, num_reducers=4, name="b"))
    assert b.jct > a.jct


def test_concurrent_jobs_complete(mr):
    jobs = mr.run_jobs(
        [
            make_job("Sort", input_gb=0.25, num_reducers=2, name="s"),
            make_job("Wcount", input_gb=0.25, num_reducers=2, name="w"),
        ]
    )
    assert all(j.done for j in jobs)


def test_kill_job_releases_everything(sim, mr):
    job = mr.submit(make_job("Sort", input_gb=1.0, num_reducers=4))
    sim.run(until=5.0)
    mr.jt.kill_job(job)
    assert job.state is JobState.KILLED
    assert all(not t.running for t in mr.trackers for t in [])  # no crash
    assert all(len(t.running) == 0 for t in mr.trackers)


def test_more_nodes_run_faster():
    def jct(n):
        local = Simulator(seed=5)
        cluster = Cluster.native(local, n)
        mr = MapReduceCluster(local, cluster.fabric, cluster.native_contexts())
        return mr.run_job(make_job("Sort", input_gb=1.0, num_reducers=2)).jct

    assert jct(8) < jct(2)


# ----------------------------------------------------------------------
# locality
# ----------------------------------------------------------------------
def test_maps_mostly_data_local(mr):
    job = mr.run_job(make_job("Sort", input_gb=1.0, num_reducers=4))
    local = 0
    for task in job.map_tasks:
        attempt = task.winning_attempt
        holders = mr.fs.namenode.replica_holders(task.block)
        if any(d.context is attempt.tracker.context for d in holders):
            local += 1
    assert local >= len(job.map_tasks) * 0.5


# ----------------------------------------------------------------------
# schedulers
# ----------------------------------------------------------------------
def test_fifo_order():
    jobs = [JobSpec(f"j{i}", SORT, 1.0) for i in range(3)]
    from repro.mapreduce.job import Job

    runtime = [Job(i, s, submit_time=float(i)) for i, s in enumerate(jobs)]
    assert [j.spec.name for j in FIFOScheduler().order(runtime)] == ["j0", "j1", "j2"]


def test_fair_scheduler_balances_slots(sim, native_cluster):
    mr = MapReduceCluster(
        sim, native_cluster.fabric, native_cluster.native_contexts(),
        scheduler=FairScheduler(),
    )
    a = mr.submit(make_job("Sort", input_gb=2.0, num_reducers=2, name="a"))
    b = mr.submit(make_job("Sort", input_gb=2.0, num_reducers=2, name="b"))
    sim.run(until=15.0)
    running_a = sum(len(t.running_attempts) for t in a.map_tasks)
    running_b = sum(len(t.running_attempts) for t in b.map_tasks)
    assert abs(running_a - running_b) <= 2
    mr.jt.shutdown()


def test_fifo_starves_second_job(sim, native_cluster):
    mr = MapReduceCluster(
        sim, native_cluster.fabric, native_cluster.native_contexts(),
        scheduler=FIFOScheduler(),
    )
    a = mr.submit(make_job("Sort", input_gb=2.0, num_reducers=2, name="a"))
    b = mr.submit(make_job("Sort", input_gb=2.0, num_reducers=2, name="b"))
    sim.run(until=15.0)
    running_a = sum(len(t.running_attempts) for t in a.map_tasks)
    running_b = sum(len(t.running_attempts) for t in b.map_tasks)
    assert running_a > running_b
    mr.jt.shutdown()


# ----------------------------------------------------------------------
# slots
# ----------------------------------------------------------------------
def test_slot_limits_respected(sim, native_cluster):
    mr = MapReduceCluster(
        sim, native_cluster.fabric, native_cluster.native_contexts(),
        map_slots=1, reduce_slots=1,
    )
    mr.submit(make_job("Sort", input_gb=2.0, num_reducers=4))
    sim.run(until=10.0)
    for tracker in mr.trackers:
        maps = sum(1 for a in tracker.running if a.task.kind is TaskKind.MAP)
        assert maps <= 1
    mr.jt.shutdown()


def test_auto_slots_follow_cores(sim, virtual_cluster):
    mr = MapReduceCluster(
        sim, virtual_cluster.fabric, list(virtual_cluster.vms),
        map_slots=None, reduce_slots=None,
    )
    assert all(t.map_slots == 1 for t in mr.trackers)  # 1 vCPU guests


# ----------------------------------------------------------------------
# speculation
# ----------------------------------------------------------------------
def test_speculation_duplicates_stragglers(sim, native_cluster):
    mr = MapReduceCluster(
        sim, native_cluster.fabric, native_cluster.native_contexts(),
        speculation=True, speculation_interval=5.0,
    )
    # crank straggler odds so the test is deterministic and visible
    mr.jt.straggler_prob = 0.5
    job = mr.run_job(make_job("Kmeans", input_gb=1.0, num_reducers=4))
    assert job.done
    assert mr.jt.speculative_launched > 0


def test_speculation_off_launches_single_attempts(sim, native_cluster):
    mr = MapReduceCluster(
        sim, native_cluster.fabric, native_cluster.native_contexts(),
        speculation=False,
    )
    job = mr.run_job(make_job("Sort", input_gb=1.0, num_reducers=4))
    assert mr.jt.speculative_launched == 0
    assert all(len(t.attempts) == 1 for t in job.map_tasks)


def test_losing_attempts_are_killed(sim, native_cluster):
    mr = MapReduceCluster(
        sim, native_cluster.fabric, native_cluster.native_contexts(),
        speculation=True,
    )
    mr.jt.straggler_prob = 0.5
    mr.jt.speculation_interval = 5.0
    job = mr.run_job(make_job("Kmeans", input_gb=1.0, num_reducers=4))
    for task in job.map_tasks + job.reduce_tasks:
        assert sum(1 for a in task.attempts if a.finished_at is not None and not a.killed) == 1


# ----------------------------------------------------------------------
# split architecture
# ----------------------------------------------------------------------
def test_split_architecture_separates_roles(sim, virtual_cluster):
    compute = virtual_cluster.vms[::2]
    storage = virtual_cluster.vms[1::2]
    mr = MapReduceCluster(
        sim, virtual_cluster.fabric, compute, storage_contexts=storage
    )
    assert mr.split_architecture
    datanode_ctxs = {d.context for d in mr.fs.namenode.datanodes.values()}
    assert datanode_ctxs == set(storage)
    job = mr.run_job(make_job("Wcount", input_gb=0.25, num_reducers=2))
    assert job.done


# ----------------------------------------------------------------------
# page-cache decision
# ----------------------------------------------------------------------
def test_small_job_is_cache_resident(mr):
    job = mr.submit(make_job("Sort", input_gb=0.25, num_reducers=2))
    assert mr.jt.io_cached(job)


def test_huge_job_is_disk_bound(mr):
    job = mr.submit(make_job("Sort", input_gb=50.0, num_reducers=2))
    assert not mr.jt.io_cached(job)


# ----------------------------------------------------------------------
# work skew
# ----------------------------------------------------------------------
def test_work_multiplier_is_deterministic(mr):
    a = mr.jt.work_multiplier_for("job-m1", 0)
    b = mr.jt.work_multiplier_for("job-m1", 0)
    c = mr.jt.work_multiplier_for("job-m2", 0)
    assert a == b
    assert a != c


def test_jct_property_requires_completion(mr):
    job = mr.submit(make_job("Sort", input_gb=0.25))
    with pytest.raises(RuntimeError):
        _ = job.jct
