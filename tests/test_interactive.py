"""Tests for interactive services, load profiles and SLA monitoring."""

import math
import random

import pytest

from repro.interactive.loadgen import BurstyLoad, ConstantLoad, SinusoidLoad, StepLoad
from repro.interactive.service import (
    MAX_LATENCY_MS,
    RUBIS,
    TPCW,
    InteractiveService,
    solve_closed_loop_latency,
)
from repro.interactive.sla import SLAMonitor


# ----------------------------------------------------------------------
# closed-loop solver
# ----------------------------------------------------------------------
def test_latency_near_service_time_at_low_load():
    r = solve_closed_loop_latency(10, think_s=7.0, demand_per_req=0.01, capacity=4.0)
    assert r == pytest.approx(0.01, rel=0.05)


def test_latency_grows_with_clients():
    rs = [
        solve_closed_loop_latency(n, 7.0, 0.01, 1.0)
        for n in (100, 500, 1000, 2000)
    ]
    assert rs == sorted(rs)
    assert rs[-1] > 10 * rs[0]


def test_latency_saturated_matches_asymptote():
    # N*D/C - Z for heavy overload
    n, d, c, z = 5000, 0.01, 1.0, 7.0
    r = solve_closed_loop_latency(n, z, d, c)
    assert r == pytest.approx(n * d / c - z, rel=0.05)


def test_latency_zero_cases():
    assert solve_closed_loop_latency(0, 7.0, 0.01, 1.0) == 0.0
    assert solve_closed_loop_latency(10, 7.0, 0.0, 1.0) == 0.0
    assert solve_closed_loop_latency(10, 7.0, 0.01, 0.0) == MAX_LATENCY_MS / 1000.0


def test_latency_monotone_in_capacity():
    rs = [solve_closed_loop_latency(1000, 7.0, 0.01, c) for c in (0.5, 1.0, 2.0, 4.0)]
    assert rs == sorted(rs, reverse=True)


# ----------------------------------------------------------------------
# load profiles
# ----------------------------------------------------------------------
def test_constant_load():
    load = ConstantLoad(100)
    assert load.clients(0) == load.clients(1e6) == 100
    assert load.peak() == 100


def test_step_load():
    load = StepLoad([(0.0, 10), (100.0, 50), (200.0, 20)])
    assert load.clients(50) == 10
    assert load.clients(150) == 50
    assert load.clients(250) == 20
    assert load.peak() == 50


def test_sinusoid_load_bounds():
    load = SinusoidLoad(10, 110, period_s=100.0)
    values = [load.clients(t) for t in range(0, 200, 5)]
    assert min(values) >= 10 and max(values) <= 110
    assert load.peak() == 110


def test_bursty_load_returns_to_base():
    load = BurstyLoad(base=10, burst_clients=90, rng=random.Random(1),
                      mean_gap_s=50.0, burst_len_s=10.0, horizon_s=1000.0)
    values = {load.clients(t) for t in range(0, 1000)}
    assert values == {10, 100}
    assert load.peak() == 100


# ----------------------------------------------------------------------
# InteractiveService
# ----------------------------------------------------------------------
def test_service_low_load_meets_sla(sim, virtual_cluster):
    svc = InteractiveService(sim, "s", RUBIS, virtual_cluster.vms[:2], ConstantLoad(100))
    svc.start()
    sim.run(until=60.0)
    assert svc.current_latency_ms < svc.sla_ms
    assert not svc.sla_violated
    assert svc.violation_fraction() == 0.0


def test_service_overload_breaches_sla(sim, virtual_cluster):
    svc = InteractiveService(sim, "s", RUBIS, virtual_cluster.vms[:1], ConstantLoad(5000))
    svc.start()
    sim.run(until=60.0)
    assert svc.sla_violated
    assert svc.violation_fraction() > 0.5


def test_service_holds_only_equilibrium_demand(sim, virtual_cluster):
    svc = InteractiveService(sim, "s", RUBIS, virtual_cluster.vms[:1], ConstantLoad(100))
    svc.start()
    sim.run(until=30.0)
    vm = virtual_cluster.vms[0]
    # ~100/7 req/s * 0.01 s/req = 0.14 cores of demand, far below 1 vCPU
    used = sum(e.rate for e in vm._cpu_entries)
    assert used < 0.4


def test_collocated_batch_io_inflates_latency(sim, virtual_cluster):
    pm = virtual_cluster.pms[0]
    svc_vm, other_vm = pm.vms
    svc = InteractiveService(sim, "s", RUBIS, [svc_vm], ConstantLoad(300))
    svc.start()
    sim.run(until=30.0)
    calm = svc.current_latency_ms
    other_vm.run_disk(math.inf, label="hog")
    sim.run(until=60.0)
    assert svc.current_latency_ms > calm * 2


def test_service_stop_releases_entries(sim, virtual_cluster):
    vm = virtual_cluster.vms[0]
    svc = InteractiveService(sim, "s", RUBIS, [vm], ConstantLoad(100))
    svc.start()
    sim.run(until=10.0)
    svc.stop()
    assert vm.pm.cpu_pool.entries == []


def test_service_double_start_rejected(sim, virtual_cluster):
    svc = InteractiveService(sim, "s", RUBIS, virtual_cluster.vms[:1], ConstantLoad(10))
    svc.start()
    with pytest.raises(RuntimeError):
        svc.start()


def test_tpcw_heavier_than_rubis(sim, virtual_cluster):
    a = InteractiveService(sim, "r", RUBIS, [virtual_cluster.vms[0]], ConstantLoad(500))
    b = InteractiveService(sim, "t", TPCW, [virtual_cluster.vms[2]], ConstantLoad(500))
    a.start()
    b.start()
    sim.run(until=30.0)
    assert b.current_latency_ms > a.current_latency_ms


# ----------------------------------------------------------------------
# SLAMonitor
# ----------------------------------------------------------------------
def test_monitor_fires_on_violation(sim, virtual_cluster):
    svc = InteractiveService(sim, "s", RUBIS, virtual_cluster.vms[:1], ConstantLoad(5000))
    svc.start()
    monitor = SLAMonitor(sim, [svc], poll_s=5.0)
    seen = []
    monitor.on_violation(lambda service, event: seen.append(event))
    monitor.start()
    sim.run(until=30.0)
    assert seen
    assert all(e.violated for e in seen)
    assert monitor.violations()


def test_monitor_quiet_when_healthy(sim, virtual_cluster):
    svc = InteractiveService(sim, "s", RUBIS, virtual_cluster.vms[:2], ConstantLoad(50))
    svc.start()
    monitor = SLAMonitor(sim, [svc], poll_s=5.0)
    seen = []
    monitor.on_violation(lambda service, event: seen.append(event))
    monitor.start()
    sim.run(until=60.0)
    assert seen == []
