"""Tests for the fair-share resource pool."""

import math

import pytest

from repro.sim.pool import ResourcePool, waterfill


def test_single_entry_full_capacity(sim):
    pool = ResourcePool(sim, 10.0)
    done = []
    pool.add(100.0, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(10.0)]


def test_two_entries_share_equally(sim):
    pool = ResourcePool(sim, 10.0)
    done = {}
    pool.add(50.0, on_complete=lambda: done.setdefault("a", sim.now))
    pool.add(50.0, on_complete=lambda: done.setdefault("b", sim.now))
    sim.run()
    assert done["a"] == pytest.approx(10.0)
    assert done["b"] == pytest.approx(10.0)


def test_freed_capacity_redistributes(sim):
    pool = ResourcePool(sim, 10.0)
    done = {}
    pool.add(50.0, on_complete=lambda: done.setdefault("short", sim.now))
    pool.add(100.0, on_complete=lambda: done.setdefault("long", sim.now))
    sim.run()
    # both run at 5 until t=10; the long one then gets all 10:
    # remaining 50 work at rate 10 -> finishes at 15
    assert done["short"] == pytest.approx(10.0)
    assert done["long"] == pytest.approx(15.0)


def test_cap_limits_rate(sim):
    pool = ResourcePool(sim, 10.0)
    done = []
    pool.add(10.0, on_complete=lambda: done.append(sim.now), cap=2.0)
    sim.run()
    assert done == [pytest.approx(5.0)]


def test_capped_entry_leaves_capacity_for_others(sim):
    pool = ResourcePool(sim, 10.0)
    done = {}
    pool.add(20.0, on_complete=lambda: done.setdefault("capped", sim.now), cap=2.0)
    pool.add(80.0, on_complete=lambda: done.setdefault("free", sim.now))
    sim.run()
    assert done["capped"] == pytest.approx(10.0)
    assert done["free"] == pytest.approx(10.0)  # gets the other 8/s


def test_weights_split_proportionally(sim):
    pool = ResourcePool(sim, 12.0)
    done = {}
    pool.add(40.0, on_complete=lambda: done.setdefault("heavy", sim.now), weight=3.0)
    pool.add(40.0, on_complete=lambda: done.setdefault("light", sim.now), weight=1.0)
    sim.run()
    # heavy: 9/s -> 40/9 = 4.44s; light then speeds up
    assert done["heavy"] == pytest.approx(40.0 / 9.0)
    assert done["heavy"] < done["light"]


def test_efficiency_slows_progress_but_occupies_capacity(sim):
    pool = ResourcePool(sim, 10.0)
    done = []
    pool.add(50.0, on_complete=lambda: done.append(sim.now), efficiency=0.5)
    sim.run()
    assert done == [pytest.approx(10.0)]


def test_zero_work_completes_via_event_loop(sim):
    pool = ResourcePool(sim, 10.0)
    done = []
    entry = pool.add(0.0, on_complete=lambda: done.append(True))
    assert entry.done
    assert done == []  # not yet: callback goes through the queue
    sim.run()
    assert done == [True]


def test_remove_entry_stops_progress(sim):
    pool = ResourcePool(sim, 10.0)
    done = []
    entry = pool.add(100.0, on_complete=lambda: done.append(True))
    sim.schedule(1.0, lambda: pool.remove(entry))
    sim.run()
    assert done == []
    assert entry.done
    assert entry.work_remaining == pytest.approx(90.0)


def test_open_ended_entry_never_completes(sim):
    pool = ResourcePool(sim, 10.0)
    entry = pool.add(math.inf, cap=4.0)
    sim.run(until=10.0)
    assert not entry.done
    assert entry.total_done == pytest.approx(0.0)  # no advance happened yet
    pool._advance()
    assert entry.total_done == pytest.approx(40.0)


def test_set_capacity_rebalances(sim):
    pool = ResourcePool(sim, 10.0)
    done = []
    pool.add(100.0, on_complete=lambda: done.append(sim.now))
    sim.schedule(5.0, lambda: pool.set_capacity(50.0))
    sim.run()
    # 50 done at t=5, remaining 50 at 50/s -> t=6
    assert done == [pytest.approx(6.0)]


def test_add_work_extends_entry(sim):
    pool = ResourcePool(sim, 10.0)
    done = []
    entry = pool.add(50.0, on_complete=lambda: done.append(sim.now))
    sim.schedule(2.0, lambda: entry.add_work(30.0))
    sim.run()
    assert done == [pytest.approx(8.0)]


def test_utilization_tracks_rates(sim):
    pool = ResourcePool(sim, 10.0)
    pool.add(math.inf, cap=5.0)
    assert pool.utilization == pytest.approx(0.5)


def test_mean_utilization_integrates(sim):
    pool = ResourcePool(sim, 10.0)
    pool.add(50.0)  # busy 5s at full rate
    sim.run(until=10.0)
    assert pool.mean_utilization() == pytest.approx(0.5)


def test_entry_eta(sim):
    pool = ResourcePool(sim, 10.0)
    entry = pool.add(50.0)
    assert entry.eta() == pytest.approx(5.0)


def test_invalid_arguments(sim):
    pool = ResourcePool(sim, 10.0)
    with pytest.raises(ValueError):
        pool.add(-1.0)
    with pytest.raises(ValueError):
        pool.add(1.0, efficiency=0.0)
    with pytest.raises(ValueError):
        pool.add(1.0, efficiency=1.5)
    with pytest.raises(ValueError):
        ResourcePool(sim, -1.0)
    entry = pool.add(5.0)
    with pytest.raises(ValueError):
        entry.set_cap(-1.0)
    with pytest.raises(ValueError):
        entry.set_weight(-1.0)


# ----------------------------------------------------------------------
# waterfill (pure function)
# ----------------------------------------------------------------------
def test_waterfill_equal_weights():
    assert waterfill(10.0, [1, 1], [math.inf, math.inf]) == [5.0, 5.0]


def test_waterfill_respects_caps_and_redistributes():
    rates = waterfill(10.0, [1, 1], [2.0, math.inf])
    assert rates[0] == pytest.approx(2.0)
    assert rates[1] == pytest.approx(8.0)


def test_waterfill_weighted():
    rates = waterfill(12.0, [3, 1], [math.inf, math.inf])
    assert rates == [pytest.approx(9.0), pytest.approx(3.0)]


def test_waterfill_zero_capacity():
    assert waterfill(0.0, [1, 1], [math.inf, math.inf]) == [0.0, 0.0]


def test_waterfill_zero_weight_gets_nothing():
    rates = waterfill(10.0, [0, 1], [math.inf, math.inf])
    assert rates == [0.0, pytest.approx(10.0)]


def test_waterfill_all_capped_leaves_slack():
    rates = waterfill(10.0, [1, 1], [2.0, 3.0])
    assert rates == [pytest.approx(2.0), pytest.approx(3.0)]


def test_same_instant_finish_callback_removes_sibling(sim):
    """Two entries drain in the same _advance batch; the first one's
    completion callback removes the second (the finished-attempt-kills-
    speculative-twin race).  The removal must not raise and the
    sibling's on_complete must not fire."""
    pool = ResourcePool(sim, 10.0)
    calls = []
    entries = {}

    def first_done():
        calls.append("first")
        pool.remove(entries["second"])

    entries["first"] = pool.add(50.0, on_complete=first_done)
    entries["second"] = pool.add(
        50.0, on_complete=lambda: calls.append("second")
    )
    sim.run()
    assert calls == ["first"]
    assert entries["second"].done
    assert entries["second"].rate == 0.0
    assert pool.entries == []
