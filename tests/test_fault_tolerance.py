"""Failure-injection tests: node loss, output loss, HDFS recovery."""

import pytest

from repro.cluster.cluster import Cluster
from repro.mapreduce.cluster import MapReduceCluster
from repro.sim.engine import Simulator
from repro.workloads.specs import make_job


def build(n=6, seed=9, **jt_kwargs):
    sim = Simulator(seed=seed)
    cluster = Cluster.native(sim, n)
    mr = MapReduceCluster(
        sim, cluster.fabric, cluster.native_contexts(), **jt_kwargs
    )
    return sim, cluster, mr


def run_to_completion(sim, mr, job, timeout=5000.0):
    mr.jt.on_complete(job.job_id, lambda j: sim.stop())
    sim.run(until=sim.now + timeout)
    mr.jt.shutdown()
    return job


def test_job_survives_node_failure_during_maps():
    sim, cluster, mr = build()
    job = mr.submit(make_job("Sort", input_gb=1.0, num_reducers=4))
    victim = cluster.native_contexts()[0]
    sim.schedule(3.0, lambda: mr.fail_node(victim))
    run_to_completion(sim, mr, job)
    assert job.done
    # nothing completed on the dead node
    for task in job.map_tasks + job.reduce_tasks:
        assert task.winning_attempt.tracker.context is not victim


def test_job_survives_node_failure_during_reduce_phase():
    sim, cluster, mr = build()
    job = mr.submit(make_job("Sort", input_gb=0.5, num_reducers=4))
    victim = cluster.native_contexts()[1]

    def fail_when_reducing():
        if job.maps_done:
            mr.fail_node(victim)
        else:
            sim.schedule(1.0, fail_when_reducing)

    sim.schedule(1.0, fail_when_reducing)
    run_to_completion(sim, mr, job)
    assert job.done


def test_lost_map_outputs_are_reexecuted():
    sim, cluster, mr = build()
    job = mr.submit(make_job("Sort", input_gb=1.0, num_reducers=4))
    victim = cluster.native_contexts()[0]
    state = {}

    def fail_after_some_maps():
        done_on_victim = [
            t for t in job.map_tasks
            if t.completed and t.winning_attempt.tracker.context is victim
        ]
        if done_on_victim and not job.maps_done:
            state["lost"] = len(done_on_victim)
            state["attempts_before"] = sum(len(t.attempts) for t in job.map_tasks)
            mr.fail_node(victim)
        elif not job.maps_done:
            sim.schedule(0.5, fail_after_some_maps)

    sim.schedule(0.5, fail_after_some_maps)
    run_to_completion(sim, mr, job)
    assert job.done
    if "lost" in state:
        after = sum(len(t.attempts) for t in job.map_tasks)
        assert after >= state["attempts_before"] + state["lost"]


def test_dead_tracker_gets_no_new_work():
    sim, cluster, mr = build()
    victim = cluster.native_contexts()[2]
    mr.fail_node(victim)
    job = mr.submit(make_job("Wcount", input_gb=0.5, num_reducers=4))
    run_to_completion(sim, mr, job)
    assert job.done
    dead = next(t for t in mr.trackers if t.context is victim)
    assert not dead.alive
    for task in job.map_tasks + job.reduce_tasks:
        for attempt in task.attempts:
            assert attempt.tracker.context is not victim


def test_hdfs_recovers_replication_after_failure():
    sim, cluster, mr = build()
    mr.fs.preload_file("data", 512.0)
    victim = cluster.native_contexts()[0]
    mr.fail_node(victim, recover_hdfs=True)
    sim.run(until=200.0)
    assert not mr.fs.namenode.under_replicated(mr.fs.replication)
    mr.jt.shutdown()


def test_storage_only_failure_in_split_architecture():
    sim = Simulator(seed=9)
    cluster = Cluster.virtual(sim, 4, 2)
    compute = cluster.vms[::2]
    storage = cluster.vms[1::2]
    mr = MapReduceCluster(sim, cluster.fabric, compute, storage_contexts=storage)
    job = mr.submit(make_job("Wcount", input_gb=0.5, num_reducers=4))
    sim.schedule(2.0, lambda: mr.fail_node(storage[0]))
    mr.jt.on_complete(job.job_id, lambda j: sim.stop())
    sim.run(until=5000.0)
    assert job.done
    mr.jt.shutdown()


def test_original_attempt_survives_speculative_node_failure():
    """Killing the node that hosts the winning speculative copy must let
    the original attempt finish the task (no orphaned task state)."""
    sim, cluster, mr = build(
        seed=11, straggler_prob=0.5, speculation_factor=1.2,
        speculation_interval=5.0,
    )
    job = mr.submit(make_job("Sort", input_gb=1.0, num_reducers=4))
    state = {}

    def hunt():
        if job.done or "original" in state:
            return
        for task in job.map_tasks + job.reduce_tasks:
            running = task.running_attempts
            if len(running) < 2:
                continue
            original, speculative = running[0], running[-1]
            if speculative.tracker.context is original.tracker.context:
                continue
            state["task"] = task
            state["original"] = original
            # freeze further speculation so the surviving original is
            # the only candidate left for this task
            mr.jt._spec_cancel()
            mr.fail_node(speculative.tracker.context)
            return
        sim.schedule(0.5, hunt)

    sim.schedule(0.5, hunt)
    run_to_completion(sim, mr, job, timeout=20000.0)
    assert job.done
    assert "original" in state, "no speculative attempt ever launched"
    task = state["task"]
    assert task.completed
    assert task.winning_attempt is state["original"]


def test_node_failure_cancels_inflight_shuffle_fetches():
    """Shuffle flows sourced from a dead node are torn down, and the
    reducer re-fetches from the re-executed map instead of hanging."""
    from repro.sim.network import Flow

    sim, cluster, mr = build()
    job = mr.submit(make_job("Sort", input_gb=1.0, num_reducers=4))
    state = {}

    def hunt():
        if job.done or "host" in state:
            return
        for task in job.reduce_tasks:
            for attempt in task.running_attempts:
                for handle in attempt._handles:
                    if not isinstance(handle, Flow) or handle.done:
                        continue
                    victim = next(
                        (c for c in cluster.native_contexts()
                         if c.host == handle.src), None,
                    )
                    if victim is None or victim is attempt.tracker.context:
                        continue
                    state["host"] = handle.src
                    mr.fail_node(victim)
                    # the dead host's flows are gone immediately
                    assert not mr.fabric.flows_from(state["host"])
                    return
        sim.schedule(0.2, hunt)

    sim.schedule(0.2, hunt)
    run_to_completion(sim, mr, job, timeout=20000.0)
    assert job.done
    assert "host" in state, "never caught an in-flight shuffle fetch"
    counters = sim.obs.metrics.counters()
    assert counters.get("fault.shuffle_fetches_cancelled", 0) >= 1
    assert counters.get("net.flows.cancelled", 0) >= 1


def test_failure_of_unknown_context_is_storage_only_noop():
    sim, cluster, mr = build()
    foreign = cluster.add_pm("foreign").native
    mr.jt.handle_node_failure(foreign)  # no tracker there: no-op


def test_node_failure_tears_down_same_host_loopback_fetches():
    """A reducer fetching a map output resident on its *own* host rides
    the loopback channel.  flows_from must report those flows too, or a
    chaos node-kill leaves the dead host's same-host fetch running --
    it would keep transferring and deliver bytes that no longer exist."""
    from repro.chaos import ChaosInjector, FaultSchedule, FaultSpec

    sim, cluster, mr = build()
    job = mr.submit(make_job("Sort", input_gb=1.0, num_reducers=6))
    state = {}
    original_start_flow = mr.fabric.start_flow

    def kill_source_host():
        host, flow = state["host"], state["flow"]
        if flow.done:  # pragma: no cover - raced to completion
            return
        # the fabric's outbound index must see the loopback flow, or
        # teardown paths keyed on flows_from skip it
        assert flow in mr.fabric.flows_from(host)
        assert flow in mr.fabric.flows_to(host)
        victim = next(c for c in cluster.native_contexts() if c.host == host)
        schedule = FaultSchedule(
            faults=(
                FaultSpec(
                    kind="node_crash", at=sim.now, duration=5.0,
                    target=victim.name,
                ),
            ),
            horizon=10000.0,
        )
        injector = ChaosInjector(sim, mr, schedule)
        injector.start()

    def spying_start_flow(src_host, dst_host, mb, **kwargs):
        flow = original_start_flow(src_host, dst_host, mb, **kwargs)
        if (
            "host" not in state
            and src_host == dst_host
            and str(kwargs.get("label", "")).endswith(":shuffle")
        ):
            state["host"] = src_host
            state["flow"] = flow
            sim.schedule(0.0, kill_source_host)
        return flow

    mr.fabric.start_flow = spying_start_flow
    run_to_completion(sim, mr, job, timeout=20000.0)
    assert job.done
    assert "host" in state, "never saw a same-host shuffle fetch"
    assert state["flow"].done
    assert not mr.fabric.flows_from(state["host"])
    counters = sim.obs.metrics.counters()
    assert counters.get("fault.shuffle_fetches_cancelled", 0) >= 1
