"""repro.obs.bench + SimCapture: profiling, regression gate, CLI."""

import copy
import json

import pytest

from repro.cluster.cluster import Cluster
from repro.mapreduce.cluster import MapReduceCluster
from repro.obs.bench import (
    DEFAULT_CELLS,
    archive_report,
    compare_reports,
    format_bench,
    format_compare_table,
    result_digest,
    run_bench,
    run_cell,
    write_bench_json,
)
from repro.obs.capture import SimCapture, active_sim_capture
from repro.obs.critpath import CATEGORIES
from repro.sim.engine import Simulator
from repro.workloads.specs import make_job


def _tiny_job(seed=4):
    sim = Simulator(seed=seed)
    cluster = Cluster.native(sim, 4)
    mr = MapReduceCluster(sim, cluster.fabric, cluster.native_contexts())
    job = mr.run_job(make_job("Sort", input_gb=0.25, num_reducers=2))
    return sim, job


# ----------------------------------------------------------------------
# SimCapture + engine event accounting
# ----------------------------------------------------------------------
def test_sim_capture_collects_and_nests():
    assert active_sim_capture() is None
    with SimCapture() as outer:
        sim_a = Simulator(seed=1)
        with SimCapture() as inner:
            sim_b = Simulator(seed=2)
            assert inner.simulators == [sim_b]
            assert active_sim_capture() is inner
        assert active_sim_capture() is outer
        assert outer.simulators == [sim_a]
    assert active_sim_capture() is None


def test_sim_capture_forces_tracing_and_counts_spans():
    with SimCapture(tracing=True) as capture:
        sim, job = _tiny_job()
    assert job.done
    assert capture.total_spans() == len(sim.obs.tracer) > 0
    assert capture.total_events() == sim.events_processed > 0


def test_event_accounting_attributes_modules():
    with SimCapture(accounting=True) as capture:
        sim, _job = _tiny_job()
    counts = capture.combined_event_counts()
    assert counts, "accounting should record per-module event counts"
    assert sum(counts.values()) == sim.events_processed
    assert any(module.startswith("repro.") for module in counts)


def test_event_accounting_off_by_default():
    sim, _job = _tiny_job()
    assert sim.event_counts == {}
    assert sim.events_processed > 0


def test_sim_capture_combined_blame_ties_to_makespan():
    with SimCapture(tracing=True) as capture:
        _sim, job = _tiny_job()
    blame = capture.combined_blame()
    assert blame["total"]["jobs"] == 1
    assert sum(blame["total"]["blame_s"].values()) == pytest.approx(
        job.jct, abs=1e-6
    )


# ----------------------------------------------------------------------
# run_cell / run_bench
# ----------------------------------------------------------------------
def test_run_cell_profiles_and_blames_fig10():
    cell = run_cell("fig10", scale="tiny", seed=1)
    assert cell["figure"] == "fig10"
    assert cell["events"] > 0 and cell["events_per_s"] > 0
    assert cell["spans"] > 0 and cell["jobs"] >= 1
    assert cell["tracing_consistent"] is True
    assert set(cell["blame_s"]) == set(CATEGORIES)
    assert cell["event_counts"]
    assert cell["simulators"] >= 1


def test_run_bench_report_shape(tmp_path):
    report = run_bench(["fig10"], scale="tiny", seed=1)
    assert report["schema"] == "repro.bench/1"
    assert set(report["cells"]) == {"fig10"}
    totals = report["totals"]
    assert totals["events"] == report["cells"]["fig10"]["events"]
    assert totals["events_per_s"] > 0
    assert totals["peak_rss_kb"] is None or totals["peak_rss_kb"] > 0
    out = tmp_path / "bench.json"
    write_bench_json(str(out), report)
    assert json.loads(out.read_text()) == json.loads(
        json.dumps(report)
    )
    text = format_bench(report)
    assert "fig10" in text and "repro bench @ tiny" in text


def test_default_cells_cover_headline_and_chaos():
    assert "headline" in DEFAULT_CELLS and "chaos" in DEFAULT_CELLS


def test_result_digest_is_order_insensitive():
    assert result_digest({"a": 1, "b": 2}) == result_digest({"b": 2, "a": 1})
    assert result_digest({"a": 1}) != result_digest({"a": 2})


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------
def _fake_report(events_per_s=1000.0, digest="d0", consistent=True):
    return {
        "cells": {
            "fig10": {
                "events": 100,
                "events_per_s": events_per_s,
                "result_digest": digest,
                "tracing_consistent": consistent,
            }
        }
    }


def test_compare_reports_passes_identical_runs():
    report = _fake_report()
    failures, notes = compare_reports(report, report, 0.2)
    assert failures == [] and notes == []


def test_compare_reports_fails_on_regression():
    baseline = _fake_report(events_per_s=1000.0)
    current = _fake_report(events_per_s=700.0)  # -30% < -20% tolerance
    failures, _notes = compare_reports(baseline, current, 0.2)
    assert len(failures) == 1 and "regressed" in failures[0]
    # within tolerance: -10% passes
    failures, _notes = compare_reports(
        baseline, _fake_report(events_per_s=900.0), 0.2
    )
    assert failures == []


def test_compare_reports_fails_on_tracing_perturbation():
    baseline = _fake_report()
    current = _fake_report(consistent=False)
    failures, _notes = compare_reports(baseline, current, 0.2)
    assert any("perturbed" in f for f in failures)


def test_compare_reports_notes_digest_and_cell_drift():
    baseline = _fake_report()
    current = _fake_report(digest="d1")
    current["cells"]["new"] = dict(current["cells"]["fig10"])
    failures, notes = compare_reports(baseline, current, 0.2)
    assert failures == []
    assert any("digest changed" in n for n in notes)
    assert any("new cell" in n for n in notes)
    failures, notes = compare_reports(current, baseline, 0.2)
    assert any("missing from current" in n for n in notes)


def test_compare_reports_validates_tolerance():
    with pytest.raises(ValueError):
        compare_reports(_fake_report(), _fake_report(), 1.0)
    with pytest.raises(ValueError):
        compare_reports(_fake_report(), _fake_report(), -0.1)


def test_format_compare_table_shows_deltas_and_blame_shift():
    baseline = _fake_report(events_per_s=1000.0)
    baseline["cells"]["fig10"]["blame_pct"] = {"compute": 80.0, "shuffle_wait": 20.0}
    baseline["totals"] = {"events_per_s": 1000.0}
    current = _fake_report(events_per_s=500.0)
    current["cells"]["fig10"]["events"] = 110
    current["cells"]["fig10"]["blame_pct"] = {"compute": 60.0, "shuffle_wait": 40.0}
    current["cells"]["dropped_cell"] = None  # exercise asymmetric sets
    del current["cells"]["dropped_cell"]
    current["totals"] = {"events_per_s": 500.0}
    table = format_compare_table(baseline, current)
    assert "fig10" in table
    assert "-50.0%" in table  # per-cell events/s delta
    assert "shuffle_wait +20.0pp" in table or "compute -20.0pp" in table
    assert "1,000 -> 500" in table  # totals line


def test_archive_report_appends_history(tmp_path):
    report = _fake_report()
    report["totals"] = {"events_per_s": 1000.0}
    directory = str(tmp_path / "traj")
    first = archive_report(report, directory)
    second = archive_report(
        dict(report, totals={"events_per_s": 2000.0}), directory
    )
    assert first != second
    with open(first) as fh:
        assert json.load(fh)["cells"]["fig10"]["events"] == 100
    with open(f"{directory}/index.jsonl") as fh:
        lines = [json.loads(line) for line in fh]
    assert [e["total_events_per_s"] for e in lines] == [1000.0, 2000.0]
    assert all(e["events_per_s"]["fig10"] == 1000.0 for e in lines)


# ----------------------------------------------------------------------
# CLI: repro bench --compare exits non-zero on a synthetic regression
# ----------------------------------------------------------------------
def test_cli_bench_compare_gate(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH.json"
    traj = tmp_path / "traj"
    rc = main(["bench", "fig10", "--scale", "tiny", "--seed", "1",
               "--out", str(out), "--trajectory-dir", str(traj)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["cells"]["fig10"]["events_per_s"] > 0
    # each run lands in the trajectory archive (file + index line)
    archived = list(traj.glob("bench-*.json"))
    assert len(archived) == 1
    index_lines = (traj / "index.jsonl").read_text().splitlines()
    assert len(index_lines) == 1
    assert json.loads(index_lines[0])["events_per_s"]["fig10"] > 0

    # self-compare passes the gate (generous tolerance: this pins the
    # gate mechanics, not this machine's timing stability)
    rc = main(["bench", "fig10", "--scale", "tiny", "--seed", "1",
               "--out", "", "--trajectory-dir", "none",
               "--compare", str(out), "--tolerance", "0.9"])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "bench OK" in captured
    assert "bench vs baseline" in captured  # the per-cell delta table
    assert list(traj.glob("bench-*.json")) == archived  # 'none' skips

    # inject a synthetic regression: baseline claims 100x the speed
    doctored = copy.deepcopy(report)
    doctored["cells"]["fig10"]["events_per_s"] *= 100.0
    baseline = tmp_path / "BASELINE.json"
    baseline.write_text(json.dumps(doctored))
    rc = main(["bench", "fig10", "--scale", "tiny", "--seed", "1",
               "--out", "", "--trajectory-dir", "none",
               "--compare", str(baseline)])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().err
