"""Smoke tests: every shipped example must run end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "JCT" in out and "RUBiS mean latency" in out


def test_profiling_and_placement_runs(capsys):
    load("profiling_and_placement").main()
    out = capsys.readouterr().out
    assert "placement decisions" in out
    assert "physical" in out and "virtual" in out


def test_sla_protection_runs(capsys):
    load("sla_protection").main()
    out = capsys.readouterr().out
    assert "SLA violated" in out  # the breach window is visible
    assert "SLA met" in out  # and the ending is healthy


@pytest.mark.slow
def test_capacity_planning_runs(capsys):
    load("capacity_planning").main()
    out = capsys.readouterr().out
    assert "recommendation" in out
