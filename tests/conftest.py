"""Shared fixtures for the test suite."""

import pytest

from repro.cluster.cluster import Cluster
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=42)


@pytest.fixture
def native_cluster(sim):
    return Cluster.native(sim, 4)


@pytest.fixture
def virtual_cluster(sim):
    return Cluster.virtual(sim, 4, 2)


@pytest.fixture
def hybrid_cluster(sim):
    return Cluster.hybrid(sim, 2, 2, 2)
