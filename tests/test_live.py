"""Live telemetry: sampler, frame files, SSE server, open-ended driver."""

import json
import urllib.request

import pytest

from repro.obs.live import (
    FRAME_SCHEMA,
    JsonlFrameSink,
    LiveSampler,
    MemorySink,
    read_frames,
    summarize_frames,
    tail_jsonl,
)


# ----------------------------------------------------------------------
# sampler cadence on the virtual clock
# ----------------------------------------------------------------------
def test_sampler_cadence_on_virtual_clock(sim, native_cluster):
    sampler = LiveSampler(sim, interval_s=10.0, cluster=native_cluster)
    sampler.start()
    sim.schedule(35.0, sim.stop)
    sim.run()
    sampler.stop()
    # immediate sample at start, the 10s grid, and the closing sample
    assert [f["ts"] for f in sampler.frames] == [0.0, 10.0, 20.0, 30.0, 35.0]
    assert [f["seq"] for f in sampler.frames] == [0, 1, 2, 3, 4]


def test_sampler_stop_on_cadence_tick_does_not_duplicate(sim, native_cluster):
    sampler = LiveSampler(sim, interval_s=10.0, cluster=native_cluster)
    sampler.start()
    sim.schedule(20.0, sim.stop)
    sim.run()
    sampler.stop()
    assert [f["ts"] for f in sampler.frames] == [0.0, 10.0, 20.0]


def test_sampler_frame_layout(sim, hybrid_cluster):
    sampler = LiveSampler(sim, interval_s=5.0, cluster=hybrid_cluster)
    sampler.start()
    frame = sampler.latest
    assert frame["type"] == "frame"
    assert frame["schema"] == FRAME_SCHEMA
    for key in ("util", "slots", "queues", "sla", "blame", "chaos", "counters"):
        assert key in frame
    assert frame["util"]["tiers"]["native"]["pms"] == 2
    assert frame["util"]["tiers"]["virtual"]["pms"] == 2
    assert len(frame["util"]["racks"]) == 4
    # frames must be JSON-able as-is
    json.dumps(frame)


def test_sampler_rejects_bad_config(sim):
    with pytest.raises(ValueError):
        LiveSampler(sim, interval_s=0.0)
    with pytest.raises(ValueError):
        LiveSampler(sim, ring_size=0)


# ----------------------------------------------------------------------
# ring buffer + sinks
# ----------------------------------------------------------------------
def test_ring_buffer_eviction_keeps_newest(sim, native_cluster):
    memory = MemorySink()
    sampler = LiveSampler(sim, interval_s=1.0, ring_size=5,
                          cluster=native_cluster)
    sampler.add_sink(memory)
    sampler.start()
    sim.schedule(20.0, sim.stop)
    sim.run()
    # stop() halts the loop before the t=20 tick: frames cover 0..19s
    assert sampler.frames_emitted == 20
    assert len(sampler.frames) == 5
    assert [f["ts"] for f in sampler.frames] == [15.0, 16.0, 17.0, 18.0, 19.0]
    # sinks see every frame regardless of eviction
    assert len(memory.frames) == 20


def test_jsonl_sink_roundtrip(tmp_path, sim, native_cluster):
    path = str(tmp_path / "frames.jsonl")
    sampler = LiveSampler(sim, interval_s=5.0, cluster=native_cluster)
    with JsonlFrameSink(path) as sink:
        sampler.add_sink(sink)
        sampler.start()
        sim.schedule(30.0, sim.stop)
        sim.run()
        sampler.stop()
    frames = read_frames(path)
    assert len(frames) == sampler.frames_emitted == sink.frames_written
    assert frames[0]["ts"] == 0.0
    assert frames[-1]["ts"] == 30.0
    assert "frames over" in summarize_frames(frames)


def test_frames_pass_canonical_event_reader(tmp_path, sim, native_cluster):
    # a frames file must be a valid .jsonl event log for `repro trace`
    from repro.obs.export import read_jsonl, summarize_events

    path = str(tmp_path / "frames.jsonl")
    sampler = LiveSampler(sim, interval_s=5.0, cluster=native_cluster)
    sink = JsonlFrameSink(path)
    sampler.add_sink(sink)
    sampler.start()
    sim.schedule(10.0, sim.stop)
    sim.run()
    sink.close()
    events = read_jsonl(path)
    assert all(e["type"] == "frame" for e in events)
    assert "live frames" in summarize_events(events)


def test_tail_jsonl_follow_picks_up_appended_lines(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "frame", "seq": 0}) + "\n")
        # a torn final line the writer has not finished yet
        fh.write('{"type": "frame", "se')

    state = {"sleeps": 0}

    def fake_sleep(_s):
        state["sleeps"] += 1
        if state["sleeps"] == 1:  # writer completes the line and appends
            with open(path, "a", encoding="utf-8") as fh:
                fh.write('q": 1}\n')
                fh.write(json.dumps({"type": "frame", "seq": 2}) + "\n")

    got = list(tail_jsonl(path, follow=True, poll_s=0.01,
                          idle_timeout_s=0.05, sleep=fake_sleep))
    assert [e["seq"] for e in got] == [0, 1, 2]


def test_tail_jsonl_no_follow_stops_at_eof(tmp_path):
    path = str(tmp_path / "stream.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "frame", "seq": 0}) + "\n")
    assert [e["seq"] for e in tail_jsonl(path)] == [0]


# ----------------------------------------------------------------------
# determinism: sampling must never perturb the simulation
# ----------------------------------------------------------------------
def test_same_seed_digest_equal_with_sampling_on_off():
    from repro.experiments.live import run

    kwargs = dict(scale="tiny", seed=11, horizon_s=400.0,
                  mean_interarrival_s=90.0)
    off = run(sample_interval_s=None, **kwargs)
    on = run(sample_interval_s=15.0, **kwargs)
    fast = run(sample_interval_s=2.0, **kwargs)
    assert off["completed"] > 0
    assert off["digest"] == on["digest"] == fast["digest"]
    assert on["frames_emitted"] > 0
    assert fast["frames_emitted"] > on["frames_emitted"]


def test_sampler_does_not_perturb_mapreduce_run(sim, virtual_cluster):
    # same cluster workload digest with and without a sampler attached
    from repro.mapreduce.cluster import MapReduceCluster
    from repro.sim.engine import Simulator
    from repro.workloads.specs import make_job
    from repro.cluster.cluster import Cluster

    def one_run(with_sampler):
        s = Simulator(seed=5)
        cluster = Cluster.virtual(s, 4, 2)
        mr = MapReduceCluster(s, cluster.fabric, list(cluster.vms))
        sampler = None
        if with_sampler:
            sampler = LiveSampler(s, interval_s=3.0, cluster=cluster, mr=mr)
            sampler.start()
        jobs = mr.run_jobs([make_job("Sort", input_gb=0.25),
                            make_job("Wcount", input_gb=0.25)])
        if sampler:
            sampler.stop()
        return [round(j.jct, 9) for j in jobs]

    assert one_run(False) == one_run(True)


# ----------------------------------------------------------------------
# open-ended driver
# ----------------------------------------------------------------------
def test_live_driver_horizon_termination():
    from repro.experiments.live import run

    result = run(scale="tiny", seed=3, horizon_s=300.0,
                 mean_interarrival_s=60.0, sample_interval_s=10.0)
    assert result["reached_s"] == pytest.approx(300.0, abs=60.0)
    assert result["interrupted"] is False
    assert result["arrived"] >= result["submitted"] >= result["completed"]
    assert result["frames_emitted"] >= 300.0 / 10.0
    # summary is JSON-able and NaN-free
    assert "nan" not in json.dumps(result).lower()


def test_live_driver_diurnal_and_shedding():
    from repro.experiments.live import run

    result = run(scale="tiny", seed=3, horizon_s=400.0,
                 mean_interarrival_s=20.0, diurnal_period_s=200.0,
                 max_active=1, sample_interval_s=None)
    assert result["shed"] > 0
    assert result["submitted"] + result["shed"] == result["arrived"]


def test_live_driver_is_a_sweep_cell():
    from repro.sweep.cells import load, resolve

    assert resolve("live") == "live"
    assert resolve("streaming") == "live"
    assert load("live").__module__ == "repro.experiments.live"


def test_live_driver_frames_file(tmp_path):
    from repro.experiments.live import run

    path = str(tmp_path / "frames.jsonl")
    result = run(scale="tiny", seed=3, horizon_s=200.0,
                 mean_interarrival_s=60.0, sample_interval_s=10.0,
                 frames_out=path)
    frames = read_frames(path)
    assert len(frames) == result["frames_written"] == result["frames_emitted"]
    assert frames[-1]["queues"]["finished_jobs"] == result["completed"]


# ----------------------------------------------------------------------
# SLA summaries: windowed and NaN-free when empty
# ----------------------------------------------------------------------
def _service(sim, cluster):
    from repro.interactive.loadgen import ConstantLoad
    from repro.interactive.service import RUBIS, InteractiveService

    return InteractiveService(sim, "rubis", RUBIS, list(cluster.vms)[:1],
                              ConstantLoad(50))


def test_latency_summary_empty_window_is_nan_free(sim, virtual_cluster):
    service = _service(sim, virtual_cluster)
    summary = service.latency_summary()
    assert summary["count"] == 0
    assert summary["violations"] == 0
    for value in summary.values():
        assert value == 0
    assert "nan" not in json.dumps(summary).lower()


def test_latency_summary_windowing(sim, virtual_cluster):
    service = _service(sim, virtual_cluster)
    service.start()
    sim.run(until=100.0)
    full = service.latency_summary()
    recent = service.latency_summary(window_s=20.0, now=100.0)
    assert full["count"] > recent["count"] > 0
    empty = service.latency_summary(window_s=5.0, now=1e6)
    assert empty["count"] == 0
    with pytest.raises(ValueError):
        service.latency_summary(window_s=0.0)


def test_sla_monitor_summary(sim, virtual_cluster):
    from repro.interactive.sla import SLAMonitor

    service = _service(sim, virtual_cluster)
    monitor = SLAMonitor(sim, [service])
    summary = monitor.summary()
    assert summary["rubis"]["count"] == 0
    service.start()
    monitor.start()
    sim.run(until=50.0)
    assert monitor.summary(window_s=10.0, now=50.0)["rubis"]["count"] > 0


def test_sla_latency_summary_table_has_count_column(sim, virtual_cluster):
    from repro.metrics.report import sla_latency_summary

    service = _service(sim, virtual_cluster)
    text = sla_latency_summary([service])
    assert "count" in text
    assert "nan" not in text.lower()
    service.start()
    sim.run(until=50.0)
    windowed = sla_latency_summary([service], window_s=10.0, now=50.0)
    assert "rubis" in windowed


# ----------------------------------------------------------------------
# metrics snapshot: ordering + windowed variant + delta
# ----------------------------------------------------------------------
def test_snapshot_key_ordering_is_stable():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("z.last").inc()
    registry.counter("a.first").inc(2)
    registry.gauge("m.mid").set(3.0)
    snap = registry.snapshot()
    assert list(snap) == ["counters", "gauges", "histograms", "series"]
    assert list(snap["counters"]) == ["a.first", "z.last"]
    assert json.dumps(snap) == json.dumps(registry.snapshot())


def test_snapshot_since_windows_series():
    from repro.obs import MetricsRegistry

    clock = {"t": 0.0}
    registry = MetricsRegistry(clock=lambda: clock["t"])
    registry.history = True
    gauge = registry.gauge("util")
    for t in (0.0, 10.0, 20.0, 30.0):
        clock["t"] = t
        gauge.set(t / 10.0)
    assert registry.snapshot()["series"]["util"] == 4
    windowed = registry.snapshot(since=15.0)
    assert windowed["series"]["util"] == 2
    assert windowed["window"] == {"since": 15.0, "until": 30.0}


def test_snapshot_delta():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("jobs.completed").inc(2)
    registry.gauge("depth").set(4.0)
    before = registry.snapshot()
    registry.counter("jobs.completed").inc(3)
    registry.counter("jobs.submitted").inc()
    registry.histogram("jct").observe(1.0)
    after = registry.snapshot()
    delta = MetricsRegistry.delta(before, after)
    assert delta["counters"] == {"jobs.completed": 3.0, "jobs.submitted": 1.0}
    assert delta["gauges"] == {}
    assert delta["histograms"] == {"jct": 1.0}
    assert MetricsRegistry.delta(after, after) == {
        "counters": {}, "gauges": {}, "histograms": {}, "series": {},
    }


# ----------------------------------------------------------------------
# SSE endpoint smoke test
# ----------------------------------------------------------------------
@pytest.fixture
def frame_file(tmp_path):
    from repro.experiments.live import run

    path = str(tmp_path / "frames.jsonl")
    run(scale="tiny", seed=3, horizon_s=200.0, mean_interarrival_s=60.0,
        sample_interval_s=20.0, frames_out=path)
    return path


def test_serve_endpoints_and_sse_replay(frame_file):
    from repro.obs.serve import FrameServer

    server = FrameServer(frame_file).start()
    try:
        n = len(server.store)
        assert n > 0
        health = urllib.request.urlopen(server.url + "/healthz", timeout=5)
        assert health.status == 200
        snap = json.loads(
            urllib.request.urlopen(server.url + "/snapshot", timeout=5).read()
        )
        assert snap["type"] == "frame"
        assert snap["seq"] == n - 1
        listing = json.loads(
            urllib.request.urlopen(server.url + "/frames", timeout=5).read()
        )
        assert len(listing) == n
        html = urllib.request.urlopen(server.url + "/", timeout=5).read()
        assert b"EventSource" in html and b"repro live" in html

        # SSE: full replay then a clean end event
        stream = urllib.request.urlopen(server.url + "/events", timeout=10)
        body = b""
        while b"event: end" not in body:
            chunk = stream.read(65536)
            if not chunk:
                break
            body += chunk
        payloads = [json.loads(line[6:])
                    for line in body.decode().splitlines()
                    if line.startswith("data: ")]
        frames = [p for p in payloads if p.get("type") == "frame"]
        assert [f["seq"] for f in frames] == list(range(n))

        # resume via ?since=
        stream = urllib.request.urlopen(
            server.url + f"/events?since={n - 2}", timeout=10
        )
        body = b""
        while b"event: end" not in body:
            chunk = stream.read(65536)
            if not chunk:
                break
            body += chunk
        tail = [json.loads(line[6:])
                for line in body.decode().splitlines()
                if line.startswith("data: ")]
        assert [f["seq"] for f in tail if f.get("type") == "frame"] == [n - 1]

        missing = urllib.request.urlopen(server.url + "/nope", timeout=5)
    except urllib.error.HTTPError as exc:
        assert exc.code == 404
    finally:
        server.stop()


def test_serve_snapshot_503_before_frames(tmp_path):
    from repro.obs.serve import FrameServer

    path = str(tmp_path / "empty.jsonl")
    open(path, "w").close()
    server = FrameServer(path, follow=True).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/snapshot", timeout=5)
        assert err.value.code == 503
    finally:
        server.stop()


def test_serve_follow_streams_new_frames(tmp_path):
    from repro.obs.serve import FrameServer

    path = str(tmp_path / "growing.jsonl")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "frame", "seq": 0, "ts": 0.0}) + "\n")
    server = FrameServer(path, follow=True, poll_s=0.02).start()
    try:
        stream = urllib.request.urlopen(server.url + "/events", timeout=10)
        first = b""
        while b'"seq": 0' not in first:
            first += stream.read(1)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "frame", "seq": 1, "ts": 5.0}) + "\n")
        second = b""
        while b'"seq": 1' not in second:
            second += stream.read(1)
    finally:
        server.stop()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_cli_live_and_trace_follow(tmp_path, capsys):
    from repro.cli import main

    frames = str(tmp_path / "f.jsonl")
    summary = str(tmp_path / "s.json")
    rc = main(["live", "--scale", "tiny", "--horizon", "200",
               "--mean-interarrival", "60", "--sample-interval", "20",
               "--frames-out", frames, "--json-out", summary])
    assert rc == 0
    out = capsys.readouterr().out
    assert "frames" in out and "digest" in out
    assert json.load(open(summary))["completed"] >= 0

    rc = main(["trace", frames, "--follow", "--idle-timeout", "0.05"])
    assert rc == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines and all(line.startswith("frame") for line in lines)

    # and the plain summarizer still accepts a frames file
    rc = main(["trace", frames])
    assert rc == 0
    assert "live frames" in capsys.readouterr().out
