"""Tests for resources, machines, power and cluster assembly."""

import math

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.power import EnergyMeter, PowerModel
from repro.cluster.resources import DEFAULT_PM_SPEC, Resources


# ----------------------------------------------------------------------
# Resources
# ----------------------------------------------------------------------
def test_resources_arithmetic():
    a = Resources(2, 1024, 75, 119)
    b = Resources(1, 512, 25, 19)
    assert (a + b).cpu_cores == 3
    assert (a - b).mem_mb == 512
    assert a.scaled(2).disk_mbps == 150


def test_resources_subtraction_floors_at_zero():
    a = Resources(1, 100, 10, 10)
    b = Resources(2, 200, 20, 20)
    out = a - b
    assert out.cpu_cores == 0 and out.mem_mb == 0


def test_resources_fits_in():
    small = Resources(1, 512, 10, 10)
    big = Resources(2, 1024, 75, 119)
    assert small.fits_in(big)
    assert not big.fits_in(small)


def test_resources_rejects_negative():
    with pytest.raises(ValueError):
        Resources(cpu_cores=-1)


# ----------------------------------------------------------------------
# PowerModel / EnergyMeter
# ----------------------------------------------------------------------
def test_power_linear_curve():
    model = PowerModel(idle_watts=100, peak_watts=200)
    assert model.power(0.0) == 100
    assert model.power(0.5) == 150
    assert model.power(1.0) == 200
    assert model.power(2.0) == 200  # clamped
    assert model.power(0.5, powered_on=False) == 0.0


def test_power_model_validation():
    with pytest.raises(ValueError):
        PowerModel(idle_watts=300, peak_watts=200)


def test_energy_meter_integrates_idle_power(sim, native_cluster):
    meter = EnergyMeter(sim, native_cluster.pms, sample_interval=1.0)
    sim.run(until=10.0)
    meter.stop()
    # 4 idle PMs at 150 W for 10 s
    assert meter.energy_joules == pytest.approx(4 * 150 * 10, rel=0.01)
    assert meter.mean_power() == pytest.approx(600.0, rel=0.01)


def test_energy_meter_sees_load(sim, native_cluster):
    meter = EnergyMeter(sim, native_cluster.pms, sample_interval=1.0)
    pm = native_cluster.pms[0]
    pm.native.run_cpu(math.inf, cap=2.0)
    sim.run(until=10.0)
    meter.stop()
    assert meter.energy_joules > 4 * 150 * 10


# ----------------------------------------------------------------------
# PhysicalMachine / contexts
# ----------------------------------------------------------------------
def test_native_context_runs_at_full_efficiency(sim, native_cluster):
    ctx = native_cluster.pms[0].native
    done = []
    ctx.run_cpu(10.0, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(10.0)]


def test_single_thread_cap_holds(sim, native_cluster):
    ctx = native_cluster.pms[0].native  # 2 cores
    done = []
    ctx.run_cpu(10.0, on_complete=lambda: done.append(sim.now), cap=1.0)
    sim.run()
    assert done == [pytest.approx(10.0)]  # not 5.0


def test_memory_pressure_slows_cpu(sim, native_cluster):
    ctx = native_cluster.pms[0].native
    ctx.alloc_mem(ctx.mem_capacity_mb * 1.5)  # 50% overcommit
    assert ctx.memory_pressure_factor() < 1.0
    done = []
    ctx.run_cpu(10.0, on_complete=lambda: done.append(sim.now), cap=1.0)
    sim.run()
    assert done[0] > 10.0


def test_free_mem_restores_factor(sim, native_cluster):
    ctx = native_cluster.pms[0].native
    ctx.alloc_mem(ctx.mem_capacity_mb * 2)
    assert ctx.memory_pressure_factor() < 1.0
    ctx.free_mem(ctx.mem_capacity_mb * 2)
    assert ctx.memory_pressure_factor() == 1.0


def test_cached_io_uses_memio_pool(sim, native_cluster):
    pm = native_cluster.pms[0]
    done = {}
    pm.native.run_disk(400.0, on_complete=lambda: done.setdefault("mem", sim.now), cached=True)
    sim.run()
    assert done["mem"] == pytest.approx(1.0)  # 400 MB at 400 MB/s
    assert pm.disk_pool.busy_integral == 0.0


def test_power_off_requires_idle(sim, virtual_cluster):
    pm = virtual_cluster.pms[0]
    with pytest.raises(RuntimeError):
        pm.power_off()  # hosts VMs
    empty = virtual_cluster.add_pm("extra")
    empty.power_off()
    assert not empty.powered_on
    assert empty.current_power_watts() == 0.0


# ----------------------------------------------------------------------
# Cluster assembly
# ----------------------------------------------------------------------
def test_native_cluster_shape(native_cluster):
    assert len(native_cluster.pms) == 4
    assert len(native_cluster.vms) == 0
    assert len(native_cluster.native_contexts()) == 4


def test_virtual_cluster_shape(virtual_cluster):
    assert len(virtual_cluster.pms) == 4
    assert len(virtual_cluster.vms) == 8
    assert all(pm.vm_count == 2 for pm in virtual_cluster.pms)
    assert virtual_cluster.native_contexts() == []


def test_hybrid_cluster_shape(hybrid_cluster):
    assert len(hybrid_cluster.pms) == 4
    assert len(hybrid_cluster.vms) == 4
    assert len(hybrid_cluster.native_pms) == 2
    assert len(hybrid_cluster.virtualized_pms) == 2
    assert len(hybrid_cluster.all_contexts()) == 6


def test_dom0_context(sim, native_cluster):
    dom0 = native_cluster.dom0(native_cluster.pms[0])
    assert dom0.cpu_efficiency() == pytest.approx(0.98)
    assert not dom0.is_virtual


def test_find_vm(virtual_cluster):
    vm = virtual_cluster.vms[3]
    assert virtual_cluster.find_vm(vm.name) is vm
    with pytest.raises(KeyError):
        virtual_cluster.find_vm("missing")


def test_powered_servers_counts(virtual_cluster):
    assert virtual_cluster.powered_servers() == 4


def test_utilization_aggregates(sim, native_cluster):
    native_cluster.pms[0].native.run_cpu(math.inf, cap=2.0)
    assert 0.0 < native_cluster.instantaneous_utilization() <= 1.0
