"""Tests for the CapacityScheduler and Poisson workload arrivals."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.schedulers import CapacityScheduler, _job_queue
from repro.sim.engine import Simulator
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import make_job


def test_capacity_scheduler_validation():
    with pytest.raises(ValueError):
        CapacityScheduler({})
    with pytest.raises(ValueError):
        CapacityScheduler({"a": 0.8, "b": 0.5})
    with pytest.raises(ValueError):
        CapacityScheduler({"a": -0.1})


def test_queue_routing_from_job_name():
    from repro.mapreduce.job import Job

    prod = Job(1, make_job("Sort", input_gb=1, name="prod:etl"), 0.0)
    adhoc = Job(2, make_job("Sort", input_gb=1, name="plain"), 0.0)
    assert _job_queue(prod) == "prod"
    assert _job_queue(adhoc) == "default"


def test_capacity_scheduler_protects_guaranteed_queue(sim):
    cluster = Cluster.native(sim, 4)
    scheduler = CapacityScheduler({"prod": 0.7, "adhoc": 0.3})
    mr = MapReduceCluster(
        sim, cluster.fabric, cluster.native_contexts(), scheduler=scheduler
    )
    adhoc = mr.submit(make_job("Sort", input_gb=2.0, num_reducers=2, name="adhoc:a"))
    sim.run(until=5.0)  # adhoc grabs everything first
    prod = mr.submit(make_job("Sort", input_gb=2.0, num_reducers=2, name="prod:b"))
    sim.run(until=20.0)

    def running(job):
        return sum(len(t.running_attempts) for t in job.map_tasks + job.reduce_tasks)

    # the guaranteed-majority queue got at least parity once it arrived
    assert running(prod) >= running(adhoc)
    mr.jt.shutdown()


def test_capacity_scheduler_elastic_when_alone(sim):
    cluster = Cluster.native(sim, 4)
    scheduler = CapacityScheduler({"prod": 0.5, "adhoc": 0.5})
    mr = MapReduceCluster(
        sim, cluster.fabric, cluster.native_contexts(), scheduler=scheduler
    )
    solo = mr.submit(make_job("Sort", input_gb=1.0, num_reducers=2, name="adhoc:solo"))
    sim.run(until=5.0)
    running = sum(len(t.running_attempts) for t in solo.map_tasks)
    assert running >= 7  # uses (nearly) all 8 map slots despite 0.5 capacity
    mr.jt.shutdown()


def test_capacity_default_share_validation():
    with pytest.raises(ValueError):
        CapacityScheduler({"a": 0.5}, default_share=-0.1)
    with pytest.raises(ValueError):
        CapacityScheduler({"a": 0.5}, default_share=1.5)
    assert CapacityScheduler({"a": 0.5}, default_share=0.2).default_share == 0.2


def _fake_job(job_id, name, submit=0.0, running=0):
    from repro.mapreduce.job import Job

    job = Job(job_id, make_job("Sort", input_gb=1, name=name), submit)
    # running_task_counts reads the counter TaskAttempt transitions
    # maintain; fakes set it directly
    job.running_attempt_count = running
    return job


def test_capacity_unknown_queue_gets_token_share():
    # prod is over its 0.9 guarantee; the unknown queue holds nothing,
    # so its default_share deficit puts it first -- no starvation
    scheduler = CapacityScheduler({"prod": 0.9}, default_share=0.05)
    prod = _fake_job(1, "prod:etl", running=10)
    misc = _fake_job(2, "misc:probe", submit=1.0)
    assert scheduler.order([prod, misc])[0] is misc


def test_capacity_spillover_yields_to_reclaiming_queue():
    # adhoc borrowed the idle cluster; the moment prod has demand and is
    # below its guarantee, the deficit ordering pushes the borrower back
    scheduler = CapacityScheduler({"prod": 0.7, "adhoc": 0.3})
    adhoc = _fake_job(1, "adhoc:borrower", running=8)
    prod = _fake_job(2, "prod:reclaim", submit=5.0)
    assert scheduler.order([adhoc, prod])[0] is prod


def test_capacity_queue_tie_broken_by_name_not_insertion():
    scheduler = CapacityScheduler({"a": 0.4, "b": 0.4})
    job_b = _fake_job(1, "b:first-submitted")
    job_a = _fake_job(2, "a:second-submitted", submit=1.0)
    # equal deficits: queue name decides, independent of insertion order
    assert scheduler.order([job_b, job_a]) == [job_a, job_b]
    assert scheduler.order([job_a, job_b]) == [job_a, job_b]


def test_poisson_arrivals_shape():
    gen = WorkloadGenerator(random.Random(4))
    arrivals = gen.poisson_arrivals(50, mean_interarrival_s=30.0)
    assert len(arrivals) == 50
    times = [t for t, _ in arrivals]
    assert times == sorted(times)
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean_gap = sum(gaps) / len(gaps)
    assert 10.0 < mean_gap < 90.0  # loose CLT bounds around 30
    with pytest.raises(ValueError):
        gen.poisson_arrivals(1, 0.0)


def test_poisson_arrival_replay_end_to_end():
    sim = Simulator(seed=3)
    cluster = Cluster.native(sim, 4)
    mr = MapReduceCluster(sim, cluster.fabric, cluster.native_contexts())
    gen = WorkloadGenerator(sim.fork_rng("wl"), input_scale=0.05)
    arrivals = gen.poisson_arrivals(4, mean_interarrival_s=20.0, num_reducers=2)
    done = []
    for t, spec in arrivals:
        sim.schedule(
            t, lambda spec=spec: mr.jt.submit(spec, on_complete=done.append)
        )
    sim.run(until=3000.0)
    assert len(done) == 4
    mr.jt.shutdown()
