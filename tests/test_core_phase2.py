"""Tests for Phase II: DRM, IPS and the HybridMR facade."""

import math

import pytest

from repro.cluster.cluster import Cluster
from repro.core.drm import DynamicResourceManager, LocalResourceManager
from repro.core.ips import Arbiter, InterferencePreventionSystem
from repro.core.scheduler import HybridMRConfig, HybridMRScheduler
from repro.interactive.loadgen import ConstantLoad
from repro.interactive.service import RUBIS, InteractiveService
from repro.interactive.sla import SLAMonitor
from repro.mapreduce.cluster import MapReduceCluster
from repro.sim.engine import Simulator
from repro.workloads.specs import make_job


@pytest.fixture
def virtual_mr(sim, virtual_cluster):
    return MapReduceCluster(
        sim, virtual_cluster.fabric, list(virtual_cluster.vms),
        map_slots=2, reduce_slots=2,
    )


# ----------------------------------------------------------------------
# DRM
# ----------------------------------------------------------------------
def test_drm_enables_dynamic_memory(sim, virtual_cluster, virtual_mr):
    drm = DynamicResourceManager(sim, virtual_mr.jt, list(virtual_cluster.vms))
    assert not virtual_mr.jt.dynamic_memory
    drm.start()
    assert virtual_mr.jt.dynamic_memory


def test_drm_uncaps_starved_vms(sim, virtual_cluster, virtual_mr):
    drm = DynamicResourceManager(
        sim, virtual_mr.jt, list(virtual_cluster.vms),
        manage_memory=False, manage_io=False,
    )
    drm.start()
    # fewer tasks than VMs: hosts keep slack the DRM should grant
    virtual_mr.jt.submit(make_job("Kmeans", input_gb=0.25, num_reducers=2))
    sim.run(until=30.0)
    assert any("cpu-uncap" in a for a in drm.actions)
    drm.stop()
    virtual_mr.jt.shutdown()


def test_drm_memory_ballooning_moves_capacity(sim, virtual_cluster, virtual_mr):
    drm = DynamicResourceManager(
        sim, virtual_mr.jt, list(virtual_cluster.vms),
        manage_cpu=False, manage_io=False,
    )
    drm.start()
    pm = virtual_cluster.pms[0]
    needy, donor = pm.vms
    needy.alloc_mem(needy.mem_capacity_mb * 1.3)  # paging
    sim.run(until=20.0)
    assert needy.mem_capacity_mb > 1024.0
    assert donor.mem_capacity_mb < 1024.0
    assert any("balloon" in a for a in drm.actions)
    drm.stop()
    virtual_mr.jt.shutdown()


def test_drm_io_weight_boosts_tail(sim, virtual_cluster, virtual_mr):
    drm = DynamicResourceManager(
        sim, virtual_mr.jt, list(virtual_cluster.vms),
        manage_cpu=False, manage_memory=False, tail_fraction=2.0,
    )
    drm.start()
    virtual_mr.jt.submit(make_job("Sort", input_gb=0.5, num_reducers=4))
    sim.run(until=6.0)  # mid-run: tail boost active
    assert any("io-weight" in a for a in drm.actions)
    assert any(vm.io_weight > 1.0 for vm in virtual_cluster.vms)
    sim.run(until=60.0)  # job done: weights return to fair
    drm.stop()
    virtual_mr.jt.shutdown()


def test_drm_ablation_improves_jct(sim):
    def run(managed):
        local = Simulator(seed=17)
        cluster = Cluster.virtual(local, 4, 2)
        mr = MapReduceCluster(local, cluster.fabric, list(cluster.vms),
                              map_slots=2, reduce_slots=2)
        drm = None
        if managed:
            drm = DynamicResourceManager(local, mr.jt, list(cluster.vms))
            drm.start()
        jobs = mr.run_jobs([
            make_job(b, input_gb=1.0, num_reducers=4, name=b.lower())
            for b in ("Sort", "Kmeans", "Wcount")
        ])
        if drm:
            drm.stop()
        return sum(j.jct for j in jobs) / len(jobs)

    assert run(True) < run(False)


def test_lrm_estimates_progress_rates(sim, virtual_cluster, virtual_mr):
    drm = DynamicResourceManager(sim, virtual_mr.jt, list(virtual_cluster.vms))
    drm.start()
    virtual_mr.jt.submit(make_job("Kmeans", input_gb=0.5, num_reducers=2))
    sim.run(until=30.0)
    attempts = virtual_mr.jt.running_attempts()
    if attempts:
        est = drm.estimate_attempt(attempts[0])
        assert 0.0 <= est.progress <= 1.0
    lrm = next(iter(drm.lrms.values()))
    assert isinstance(lrm, LocalResourceManager)
    assert lrm.samples
    drm.stop()
    virtual_mr.jt.shutdown()


def test_interference_score_reflects_io(sim, virtual_cluster, virtual_mr):
    drm = DynamicResourceManager(sim, virtual_mr.jt, list(virtual_cluster.vms))
    drm.start()
    virtual_mr.jt.submit(make_job("Sort", input_gb=1.0, num_reducers=4))
    sim.run(until=11.0)  # mid-run, after at least two DRM epochs
    attempts = virtual_mr.jt.running_attempts()
    assert attempts, "job finished before the probe -- enlarge the input"
    scores = [drm.interference_score(a) for a in attempts]
    assert any(s > 0 for s in scores)
    drm.stop()
    virtual_mr.jt.shutdown()


# ----------------------------------------------------------------------
# Arbiter heuristics
# ----------------------------------------------------------------------
def test_best_fit_prefers_tightest_host(sim, virtual_cluster):
    vm = virtual_cluster.vms[0]
    spare_busy = virtual_cluster.pms[2]  # hosts 2 VMs (2 vCPU used of 2)
    empty = virtual_cluster.add_pm("empty")
    target = Arbiter.best_fit(vm, [spare_busy, empty], forbidden=set())
    assert target is empty  # busy host has no vCPU headroom left


def test_best_fit_respects_forbidden(sim, virtual_cluster):
    vm = virtual_cluster.vms[0]
    empty = virtual_cluster.add_pm("empty")
    assert Arbiter.best_fit(vm, [empty], forbidden={"empty"}) is None


def test_min_min_orders_ascending():
    scored = [(3.0, "c"), (1.0, "a"), (2.0, "b")]
    assert [x for _, x in Arbiter.min_min_order(scored)] == ["a", "b", "c"]


# ----------------------------------------------------------------------
# IPS end to end
# ----------------------------------------------------------------------
def build_ips_world(seed=5, ips_on=True):
    sim = Simulator(seed=seed)
    cluster = Cluster.virtual(sim, 4, 3)
    vms = cluster.vms
    service_vms = [vms[i] for i in range(0, len(vms), 3)]
    batch_vms = [vm for vm in vms if vm not in service_vms]
    service = InteractiveService(sim, "rubis", RUBIS, service_vms, ConstantLoad(1200))
    scheduler = HybridMRScheduler(
        sim, cluster.fabric, [], batch_vms, cluster.pms,
        services=[service],
        config=HybridMRConfig(phase1_enabled=False, ips_enabled=ips_on),
        mr_kwargs=dict(map_slots=2, reduce_slots=2),
    )
    scheduler.start()
    return sim, cluster, service, scheduler


def test_ips_throttles_interfering_vms():
    sim, cluster, service, scheduler = build_ips_world()
    scheduler.submit(make_job("Sort", input_gb=2.0, num_reducers=8))
    sim.run(until=120.0)
    actions = [a.action for a in scheduler.ips.actions]
    assert "throttle" in actions
    scheduler.stop()


def test_ips_protects_latency_vs_no_ips():
    def mean_latency(ips_on):
        sim, cluster, service, scheduler = build_ips_world(ips_on=ips_on)
        scheduler.submit(make_job("Sort", input_gb=2.0, num_reducers=8))
        scheduler.submit(make_job("Twitter", input_gb=2.0, num_reducers=8))
        sim.run(until=180.0)
        value = service.mean_latency_ms()
        scheduler.stop()
        return value

    assert mean_latency(True) < mean_latency(False)


def test_ips_releases_after_recovery():
    sim, cluster, service, scheduler = build_ips_world()
    scheduler.submit(make_job("Sort", input_gb=1.0, num_reducers=8))
    sim.run(until=400.0)
    actions = [a.action for a in scheduler.ips.actions]
    if "throttle" in actions:
        assert "release" in actions
    scheduler.stop()


# ----------------------------------------------------------------------
# HybridMRScheduler facade
# ----------------------------------------------------------------------
def test_facade_requires_some_context(sim, virtual_cluster):
    with pytest.raises(ValueError):
        HybridMRScheduler(sim, virtual_cluster.fabric, [], [], virtual_cluster.pms)


def test_facade_routes_without_native_side(sim, virtual_cluster):
    scheduler = HybridMRScheduler(
        sim, virtual_cluster.fabric, [], list(virtual_cluster.vms),
        virtual_cluster.pms, config=HybridMRConfig(),
    )
    scheduler.start()
    placement, job = scheduler.submit(make_job("Sort", input_gb=0.25, num_reducers=2))
    assert placement.value == "virtual"
    sim.run(until=200.0)
    assert job.done
    scheduler.stop()


def test_facade_random_placement_uses_both_sides(sim, hybrid_cluster):
    scheduler = HybridMRScheduler(
        sim, hybrid_cluster.fabric, hybrid_cluster.native_contexts(),
        list(hybrid_cluster.vms), hybrid_cluster.pms,
        config=HybridMRConfig(phase1_enabled=False),
    )
    scheduler.start()
    placements = {
        scheduler.submit(make_job("Sort", input_gb=0.25, num_reducers=2, name=f"j{i}"))[0]
        for i in range(8)
    }
    assert len(placements) == 2
    scheduler.stop()
