#!/usr/bin/env python
"""SLA protection in action: the paper's Figure 9(a) story.

RUBiS and TPC-W run happily on a virtualized cluster.  Ten minutes in,
a batch of MapReduce jobs lands on collocated VMs and latency blows
through the 2-second SLA.  The Interference Prevention System detects
it, throttles / pauses / migrates the offending guests, and latency
returns below the SLA while the batch still completes.

Run:  python examples/sla_protection.py
"""

from repro.cluster import Cluster
from repro.core import HybridMRConfig, HybridMRScheduler
from repro.interactive import ConstantLoad, InteractiveService, RUBIS, TPCW
from repro.sim import Simulator
from repro.workloads import make_job

BATCH_ARRIVAL_S = 600.0
HORIZON_S = 2100.0


def main() -> None:
    sim = Simulator(seed=11)
    cluster = Cluster.virtual(sim, 8, 3)
    vms = cluster.vms
    rubis_vms = [vms[i] for i in range(0, len(vms), 6)]
    tpcw_vms = [vms[i] for i in range(3, len(vms), 6)]
    batch_vms = [vm for vm in vms if vm not in rubis_vms and vm not in tpcw_vms]

    rubis = InteractiveService(sim, "RUBiS", RUBIS, rubis_vms, ConstantLoad(1200))
    tpcw = InteractiveService(sim, "TPC-W", TPCW, tpcw_vms, ConstantLoad(700))

    scheduler = HybridMRScheduler(
        sim, cluster.fabric, [], batch_vms, cluster.pms,
        services=[rubis, tpcw],
        config=HybridMRConfig(phase1_enabled=False),
    )
    scheduler.start()

    def land_batch() -> None:
        print(f"t={sim.now:6.0f}s  batch jobs arrive on the collocated VMs")
        for bench in ("Sort", "Wcount", "Twitter"):
            scheduler.submit(make_job(bench, input_gb=2.0, num_reducers=len(batch_vms)))

    sim.schedule(BATCH_ARRIVAL_S, land_batch)
    sim.run(until=HORIZON_S)

    print(f"\n{'window':>14s}  {'RUBiS ms':>9s}  {'TPC-W ms':>9s}   (peak per window; SLA 2000 ms)")
    for t in range(0, int(HORIZON_S), 120):
        r = rubis.latency_trace.window(t, t + 120).max()
        w = tpcw.latency_trace.window(t, t + 120).max()
        bar = "  <-- SLA violated" if max(r, w) > rubis.sla_ms else ""
        print(f"{t:6d}-{t + 120:<6d}s  {r:9.0f}  {w:9.0f}{bar}")

    print("\nIPS interventions:")
    for action in scheduler.ips.actions:
        print(
            f"  t={action.time:7.0f}s [{action.service}] "
            f"{action.action:8s} {action.vm_name}  {action.detail}"
        )
    if scheduler.ips.migrations:
        print("\nlive migrations:")
        for record in scheduler.ips.migrations:
            print(
                f"  {record.vm_name}: {record.src} -> {record.dst} in "
                f"{record.migration_time_s:.1f}s "
                f"(downtime {record.downtime_ms:.0f} ms)"
            )
    final_r = rubis.current_latency_ms
    final_w = tpcw.current_latency_ms
    print(
        f"\nfinal latencies: RUBiS {final_r:.0f} ms, TPC-W {final_w:.0f} ms "
        f"-> {'SLA met' if max(final_r, final_w) < rubis.sla_ms else 'SLA violated'}"
    )
    scheduler.stop()


if __name__ == "__main__":
    main()
