#!/usr/bin/env python
"""Capacity planning with the Figure 11 trade-off sweep.

A cluster operator has a fixed server budget and a recurring workload
mix.  How should the fleet be split between native Hadoop machines and
virtualized hosts?  This example sweeps hybrid configurations, measures
mean JCT, energy and utilization for each, and recommends the
configuration with the best Performance/Energy -- exactly the analysis
the paper suggests an administrator run (Section IV, Figure 11).

Run:  python examples/capacity_planning.py
"""

from repro.experiments.common import Scale
from repro.experiments.fig11_tradeoff import best_and_worst, fig11

BUDGET_PMS = 8
SCALE = Scale("planning", pms=BUDGET_PMS, vms_per_pm=2, input_fraction=0.12)


def main() -> None:
    print(f"sweeping hybrid splits of a {BUDGET_PMS}-server budget...\n")
    results = fig11(SCALE, total_pms=BUDGET_PMS, horizon_s=700.0)

    header = (
        f"{'config':>7s} {'native':>7s} {'VMs':>4s} {'servers':>8s} "
        f"{'meanJCT':>9s} {'energy_kWh':>11s} {'util':>6s} {'perf/energy':>12s}"
    )
    print(header)
    print("-" * len(header))
    for r in sorted(results, key=lambda r: -r.perf_per_energy):
        print(
            f"{r.label:>7s} {r.n_native_pms:7d} {r.n_vms:4d} {r.servers:8d} "
            f"{r.mean_jct_s:8.1f}s {r.energy_joules / 3.6e6:11.3f} "
            f"{r.utilization:6.2f} {r.perf_per_energy:12.3f}"
        )

    best, worst = best_and_worst(results)
    print(
        f"\nrecommendation: {best.label} "
        f"({best.n_native_pms} native machines + {best.n_vms} VMs) -- "
        f"{best.perf_per_energy / worst.perf_per_energy:.1f}x the "
        f"Performance/Energy of the worst split ({worst.label})."
    )
    print(
        "The paper found the same: a mixed configuration (C7, 12 PMs + "
        "12 VMs) beat both the all-native and all-virtual extremes."
    )


if __name__ == "__main__":
    main()
