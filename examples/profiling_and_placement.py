#!/usr/bin/env python
"""Phase I end to end: train the profiler, estimate, place jobs.

Reproduces the paper's workflow: MapReduce jobs are first run on a small
training cluster (both native and virtual instances), the profile
database learns JCT as a function of data size and cluster size
(Algorithm 1), and incoming jobs are steered to the physical or virtual
cluster by comparing estimates with their desired completion times
(Algorithm 2).

Run:  python examples/profiling_and_placement.py
"""

from repro.core import JobProfiler, PhaseOneScheduler
from repro.workloads import make_job

TRAIN_SIZES_GB = [0.5, 1.0, 2.0]
TRAIN_CLUSTER = 4  # nodes in the training cluster
TARGET_CLUSTER = 12  # nodes in the production clusters


def main() -> None:
    profiler = JobProfiler(repeats=3)

    print("training (each row is 3 averaged simulation runs):")
    for bench in ("Sort", "PiEst", "Wcount"):
        for gb in TRAIN_SIZES_GB:
            native = profiler.profile(bench, gb, TRAIN_CLUSTER, virtual=False)
            virtual = profiler.profile(bench, gb, TRAIN_CLUSTER, virtual=True)
            overhead = 100 * (virtual.jct_s - native.jct_s) / native.jct_s
            print(
                f"  {bench:7s} {gb:4.1f}GB on {TRAIN_CLUSTER} nodes: "
                f"native {native.jct_s:6.1f}s, virtual {virtual.jct_s:6.1f}s "
                f"({overhead:+5.1f}%)"
            )

    print("\nestimates for unseen configurations (Algorithm 1):")
    for bench, gb in (("Sort", 1.5), ("Sort", 3.0), ("PiEst", 1.0)):
        est = profiler.db.estimate(bench, True, TRAIN_CLUSTER, gb)
        print(
            f"  {bench:7s} {gb:4.1f}GB virtual: {est.jct_s:6.1f}s "
            f"(map {est.map_time_s:.1f}s + reduce {est.reduce_time_s:.1f}s, "
            f"via {est.method})"
        )

    print("\nplacement decisions (Algorithm 2):")
    phase1 = PhaseOneScheduler(
        profiler.db,
        physical_cluster_size=TRAIN_CLUSTER,
        virtual_cluster_size=TRAIN_CLUSTER,
    )
    submissions = [
        make_job("Sort", input_gb=1.5, name="nightly-etl", desired_jct_s=60.0),
        make_job("Sort", input_gb=1.5, name="adhoc-sort", desired_jct_s=600.0),
        make_job("PiEst", name="monte-carlo"),  # no deadline: overhead test
        make_job("Wcount", input_gb=1.0, name="log-counts", desired_jct_s=45.0),
    ]
    for spec in submissions:
        placement = phase1.place_batch(spec)
        decision = phase1.decisions[-1]
        deadline = f"{spec.desired_jct_s:.0f}s" if spec.desired_jct_s else "none"
        print(
            f"  {spec.name:12s} (deadline {deadline:>5s}) -> "
            f"{placement.value:8s}  [{decision.reason}]"
        )


if __name__ == "__main__":
    main()
