#!/usr/bin/env python
"""Quickstart: run MapReduce jobs on a simulated hybrid data center.

Builds the paper's hybrid shape (native Hadoop nodes plus batch VMs
collocated with an interactive service), submits a few jobs through the
HybridMR scheduler and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.core import HybridMRConfig, HybridMRScheduler
from repro.interactive import ConstantLoad, InteractiveService, RUBIS
from repro.sim import Simulator
from repro.workloads import make_job


def main() -> None:
    sim = Simulator(seed=42)

    # 4 native Hadoop machines + 4 virtualized hosts with 3 guests each:
    # one guest per host runs the RUBiS web tier, the rest take batch work
    cluster = Cluster.hybrid(sim, n_native_pms=4, n_virt_pms=4, vms_per_pm=3)
    service_vms = [vm for i, vm in enumerate(cluster.vms) if i % 3 == 0]
    batch_vms = [vm for vm in cluster.vms if vm not in service_vms]

    rubis = InteractiveService(
        sim, "rubis", RUBIS, service_vms, ConstantLoad(900), sla_ms=2000.0
    )

    scheduler = HybridMRScheduler(
        sim,
        cluster.fabric,
        cluster.native_contexts(),
        batch_vms,
        cluster.pms,
        services=[rubis],
        config=HybridMRConfig(phase1_enabled=False),  # no profile DB yet
    )
    scheduler.start()
    meter = cluster.start_metering()

    jobs = scheduler.run_batch(
        [
            make_job("Sort", input_gb=2.0, num_reducers=8, name="sort-demo"),
            make_job("Wcount", input_gb=2.0, num_reducers=8, name="wcount-demo"),
            make_job("Kmeans", input_gb=1.0, num_reducers=8, name="kmeans-demo"),
        ]
    )
    meter.stop()

    print(f"simulated {sim.now:.0f} s on {cluster.powered_servers()} servers\n")
    for job in jobs:
        placement = scheduler.placements[job.job_id].value
        print(
            f"  {job.spec.name:12s} -> {placement:8s} "
            f"JCT={job.jct:7.1f}s  (map {job.map_phase_time:.1f}s, "
            f"reduce {job.reduce_phase_time:.1f}s, "
            f"{len(job.map_tasks)} maps / {len(job.reduce_tasks)} reduces)"
        )
    print(
        f"\n  RUBiS mean latency: {rubis.mean_latency_ms():.0f} ms "
        f"(SLA {rubis.sla_ms:.0f} ms, violations "
        f"{100 * rubis.violation_fraction():.1f}% of epochs)"
    )
    print(f"  cluster energy: {meter.energy_kwh:.3f} kWh")
    if scheduler.ips is not None and scheduler.ips.actions:
        print(f"  IPS interventions: {len(scheduler.ips.actions)}")
        for action in scheduler.ips.actions[:5]:
            print(f"    t={action.time:6.0f}s {action.action:8s} {action.vm_name}")
    scheduler.stop()


if __name__ == "__main__":
    main()
