"""Ablation benchmarks for the design choices DESIGN.md calls out.

Beyond the paper's own figures:

- Arbiter mitigation ladder: throttle-only vs full ladder vs no IPS;
- Arbiter bin-packing heuristic: BestFit vs FirstFit vs WorstFit;
- scheduler policy: Fair vs FIFO under a mixed batch;
- execution engine (the paper's future work): stock Hadoop vs
  Twister-style cached input vs Spark-style in-memory.
"""

from conftest import emit, run_once

from repro.cluster.cluster import Cluster
from repro.core.drm import DynamicResourceManager
from repro.core.ips import InterferencePreventionSystem
from repro.core.scheduler import HybridMRConfig, HybridMRScheduler
from repro.interactive.loadgen import ConstantLoad
from repro.interactive.service import RUBIS, InteractiveService
from repro.interactive.sla import SLAMonitor
from repro.mapreduce.cluster import MapReduceCluster
from repro.mapreduce.iterative import IterativeJobRunner, in_memory_engine
from repro.mapreduce.schedulers import FairScheduler, FIFOScheduler
from repro.metrics.report import format_table
from repro.sim.engine import Simulator
from repro.workloads.specs import make_job


# ----------------------------------------------------------------------
# IPS ladder ablation
# ----------------------------------------------------------------------
def _ips_world(seed=5):
    sim = Simulator(seed=seed)
    cluster = Cluster.virtual(sim, 4, 3)
    vms = cluster.vms
    service_vms = [vms[i] for i in range(0, len(vms), 3)]
    batch_vms = [vm for vm in vms if vm not in service_vms]
    service = InteractiveService(sim, "rubis", RUBIS, service_vms, ConstantLoad(1200))
    return sim, cluster, service, batch_vms


def _ladder_run(mode: str) -> dict:
    sim, cluster, service, batch_vms = _ips_world()
    scheduler = HybridMRScheduler(
        sim, cluster.fabric, [], batch_vms, cluster.pms,
        services=[service],
        config=HybridMRConfig(phase1_enabled=False, ips_enabled=(mode != "none")),
        mr_kwargs=dict(map_slots=2, reduce_slots=2),
    )
    if mode == "throttle-only" and scheduler.ips is not None:
        scheduler.ips.max_migrations = 0  # never escalate past pause
    scheduler.start()
    horizon = 400.0
    completed = {"n": 0}

    def stream(bench: str, i: int = 0) -> None:
        # continuous batch pressure for the whole window
        if sim.now >= horizon:
            return
        spec = make_job(bench, input_gb=1.5, num_reducers=8,
                        name=f"{bench.lower()}#{i}")

        def done(_j):
            completed["n"] += 1
            stream(bench, i + 1)

        scheduler.virtual_mr.jt.submit(spec, on_complete=done)

    for bench in ("Sort", "Twitter"):
        stream(bench)
    sim.run(until=horizon)
    out = {
        "latency_ms": service.mean_latency_ms(),
        "violations": service.violation_fraction(),
        "batch_done": completed["n"],
    }
    scheduler.stop()
    return out


def test_ablation_ips_ladder(benchmark):
    result = run_once(
        benchmark,
        lambda: {mode: _ladder_run(mode) for mode in ("none", "throttle-only", "full")},
    )
    rows = [
        [mode, r["latency_ms"], r["violations"], r["batch_done"]]
        for mode, r in result.items()
    ]
    emit(
        "Ablation: IPS mitigation ladder (no IPS vs throttle/pause vs full)",
        format_table(["mode", "mean_latency_ms", "violation_frac", "batch_done"], rows),
    )
    assert result["full"]["violations"] < result["none"]["violations"]
    assert result["throttle-only"]["violations"] < result["none"]["violations"]


# ----------------------------------------------------------------------
# bin-packing heuristic ablation
# ----------------------------------------------------------------------
def _heuristic_run(heuristic: str) -> dict:
    """Relocate a stream of batch VMs into a mixed-capacity spare pool
    with each heuristic; measure consolidation quality."""
    from repro.core.ips import Arbiter

    sim = Simulator(seed=6)
    cluster = Cluster.virtual(sim, 6, 2)
    movers = list(cluster.vms)
    # a spare pool where half the hosts already carry one resident guest
    spares = []
    for i in range(8):
        pm = cluster.add_pm(f"spare{i}")
        if i % 2 == 0:
            cluster.add_vm(pm, name=f"resident{i}")
        spares.append(pm)
    placed = 0
    for vm in movers:
        target = Arbiter.place(heuristic, vm, spares, forbidden=set())
        if target is None:
            continue
        vm.relocate(target)
        placed += 1
    used_spares = sum(1 for pm in spares if any(v in movers for v in pm.vms))
    max_guests = max(pm.vm_count for pm in spares)
    return {"placed": placed, "spares_used": used_spares, "max_guests": max_guests}


def test_ablation_binpacking_heuristics(benchmark):
    result = run_once(
        benchmark,
        lambda: {h: _heuristic_run(h) for h in ("best_fit", "first_fit", "worst_fit")},
    )
    rows = [[h, r["placed"], r["spares_used"], r["max_guests"]]
            for h, r in result.items()]
    emit(
        "Ablation: Arbiter bin-packing heuristic (12 VM relocations into "
        "a half-loaded 8-host spare pool)",
        format_table(["heuristic", "placed", "spares_used", "max_guests"], rows),
    )
    # BestFit consolidates onto the fewest spare hosts; WorstFit spreads
    assert result["best_fit"]["spares_used"] <= result["worst_fit"]["spares_used"]


# ----------------------------------------------------------------------
# Fair vs FIFO
# ----------------------------------------------------------------------
def _sched_run(policy) -> float:
    sim = Simulator(seed=7)
    cluster = Cluster.native(sim, 6)
    mr = MapReduceCluster(
        sim, cluster.fabric, cluster.native_contexts(), scheduler=policy
    )
    jobs = mr.run_jobs([
        make_job("Sort", input_gb=1.5, num_reducers=6, name="big"),
        make_job("DistGrep", input_gb=0.5, num_reducers=6, name="small-1"),
        make_job("PiEst", num_reducers=6, name="small-2"),
    ])
    # mean of the *small* jobs' JCT: fair sharing is about their latency
    return sum(j.jct for j in jobs[1:]) / 2


def test_ablation_fair_vs_fifo(benchmark):
    result = run_once(
        benchmark,
        lambda: {
            "fair": _sched_run(FairScheduler()),
            "fifo": _sched_run(FIFOScheduler()),
        },
    )
    emit(
        "Ablation: Fair vs FIFO scheduling (mean JCT of the small jobs "
        "behind a large one)",
        format_table(
            ["policy", "small_jobs_mean_jct_s"],
            [[k, v] for k, v in result.items()],
        ),
    )
    assert result["fair"] < result["fifo"]


# ----------------------------------------------------------------------
# execution engines (the paper's future work)
# ----------------------------------------------------------------------
def _engine_run(mode: str) -> dict:
    sim = Simulator(seed=5)
    cluster = Cluster.virtual(sim, 4, 2)
    mr = MapReduceCluster(sim, cluster.fabric, list(cluster.vms))
    if mode == "spark":
        in_memory_engine(mr)
    spec = make_job("Kmeans", input_gb=1.0, num_reducers=4)
    result = IterativeJobRunner(
        mr, spec, iterations=4, cache_input=(mode != "hadoop")
    ).run()
    mr.jt.shutdown()
    return {"first": result.first_pass_s, "steady": result.steady_state_s,
            "total": result.total_s}


def test_ablation_iterative_engines(benchmark):
    result = run_once(
        benchmark,
        lambda: {m: _engine_run(m) for m in ("hadoop", "twister", "spark")},
    )
    rows = [[m, r["first"], r["steady"], r["total"]] for m, r in result.items()]
    emit(
        "Ablation: iterative Kmeans (4 passes) across execution engines "
        "(the paper's future work: Twister [17], Spark [37])",
        format_table(["engine", "first_pass_s", "steady_s", "total_s"], rows),
    )
    assert result["twister"]["total"] < result["hadoop"]["total"]
    assert result["spark"]["total"] < result["twister"]["total"]
