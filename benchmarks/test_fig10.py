"""Benchmarks regenerating Figure 10 (utilization + migration costs)."""

from conftest import emit, run_once

from repro.experiments.common import SMALL
from repro.experiments.fig10_migration import (
    fig10a,
    fig10a_means,
    fig10bc,
    migration_summary,
)
from repro.metrics.report import format_table


def test_fig10a_utilization_boost(benchmark):
    result = run_once(benchmark, fig10a, SMALL, 900.0)
    means = fig10a_means(result)
    rows = [
        [config, m["cpu"], m["mem"], m["io"]] for config, m in means.items()
    ]
    emit(
        "Figure 10(a): mean utilization, baseline vs HybridMR "
        "(paper: HybridMR boosts CPU/memory/I-O utilization; abstract: +45%)",
        format_table(["config", "cpu", "mem", "io"], rows),
    )
    for metric in ("cpu", "mem", "io"):
        assert means["hybridmr"][metric] > means["baseline"][metric]


def test_fig10bc_migration_time_and_downtime(benchmark):
    result = run_once(benchmark, fig10bc, 12)
    summary = migration_summary(result)
    rows = [
        [key, s["mean_migration_s"], s["max_migration_s"],
         s["mean_downtime_ms"], s["max_downtime_ms"]]
        for key, s in summary.items()
    ]
    emit(
        "Figures 10(b)/(c): per-VM live migration (paper: time grows with "
        "memory and load; downtime varies widely for busy VMs)",
        format_table(
            ["config", "mig_mean_s", "mig_max_s", "down_mean_ms", "down_max_ms"],
            rows,
        ),
    )
    assert (
        summary["wcount-1GB"]["mean_migration_s"]
        > summary["idle-1GB"]["mean_migration_s"]
    )
    assert (
        summary["wcount-1GB"]["mean_downtime_ms"]
        > 3 * summary["idle-1GB"]["mean_downtime_ms"]
    )
