"""Benchmark regenerating Figure 11 (configuration trade-off sweep)."""

from conftest import emit, run_once

from repro.experiments.common import SMALL
from repro.experiments.fig11_tradeoff import best_and_worst, fig11
from repro.metrics.report import format_table


def test_fig11_configuration_sweep(benchmark):
    results = run_once(benchmark, fig11, SMALL, None, 700.0)
    rows = [
        [r.label, r.n_native_pms, r.n_vms, r.servers,
         r.mean_jct_s, r.perf_per_energy, r.utilization]
        for r in results
    ]
    best, worst = best_and_worst(results)
    emit(
        f"Figure 11: Performance/Energy over hybrid configurations -- "
        f"best {best.label} ({best.n_native_pms} PMs + {best.n_vms} VMs), "
        f"worst {worst.label} ({worst.n_native_pms} PMs + {worst.n_vms} VMs). "
        "(paper: a mixed config C7 best; a pure config C17 worst)",
        format_table(
            ["config", "native_pms", "vms", "servers", "mean_jct_s",
             "perf_per_energy", "utilization"],
            rows,
        ),
    )
    # the paper's qualitative claim: some hybrid beats both pure extremes
    pure = [r for r in results if r.n_vms == 0 or r.n_native_pms == 0]
    mixed = [r for r in results if r.n_vms > 0 and r.n_native_pms > 0]
    assert mixed and pure
    assert max(m.perf_per_energy for m in mixed) > max(
        p.perf_per_energy for p in pure
    )
