"""Benchmarks regenerating Figure 9 (cross-platform comparison)."""

from conftest import emit, run_once

from repro.experiments.common import SMALL
from repro.experiments.fig09_cross_platform import fig9a, fig9b_9c
from repro.metrics.report import format_table


def test_fig9a_sla_breach_and_recovery(benchmark):
    result = run_once(benchmark, fig9a)
    trace = result["rubis_trace"]
    before = [v for t, v in trace if t < 600]
    during = [v for t, v in trace if 600 <= t <= 1200]
    after = [v for t, v in trace if t > 1800]
    emit(
        "Figure 9(a): RUBiS latency timeline around the batch arrival "
        "(paper: breach at ~12 min, recovery within bounds)",
        format_table(
            ["phase", "mean_ms", "max_ms"],
            [
                ["before-batch", sum(before) / len(before), max(before)],
                ["during-batch", sum(during) / len(during), max(during)],
                ["after-recovery", sum(after) / len(after), max(after)],
            ],
        )
        + f"\nIPS actions: {len(result['ips_actions'])}, "
        f"migrations: {len(result['migrations'])}",
    )
    sla = result["sla_ms"]
    assert max(before) < sla
    assert max(during) > sla  # the breach
    assert sum(after) / len(after) < sla  # the recovery


def test_fig9b_9c_cross_platform(benchmark):
    result = run_once(benchmark, fig9b_9c, SMALL)
    rows = [
        [bench, d["native"], d["virtual"], d["hybridmr"]]
        for bench, d in result["jct_normalized"].items()
    ]
    emit(
        "Figure 9(b): JCT normalized to worst design "
        "(paper: native best, virtual worst, HybridMR between)",
        format_table(["benchmark", "native", "virtual", "hybridmr"], rows),
    )
    metric_rows = [
        [m["design"], m["perf_per_energy"], m["energy"], m["servers"], m["utilization"]]
        for m in result["metrics"]
    ]
    emit(
        "Figure 9(c): normalized design metrics "
        "(paper: HybridMR best Performance/Energy)",
        format_table(
            ["design", "perf/energy", "energy", "servers", "utilization"],
            metric_rows,
        ),
    )
    by_design = {r.design: r for r in result["reports"]}
    assert by_design["hybridmr"].perf_per_energy >= by_design["native"].perf_per_energy
    assert by_design["hybridmr"].perf_per_energy > by_design["virtual"].perf_per_energy
    for bench, d in result["jct_normalized"].items():
        assert d["virtual"] >= d["hybridmr"]
