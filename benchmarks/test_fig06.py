"""Benchmarks regenerating Figure 6 (profiling error + interference)."""

from conftest import emit, run_once

from repro.experiments.fig06_models import fig6a, fig6b, fig6c
from repro.metrics.report import format_series, format_table


def test_fig6a_profiling_error(benchmark):
    result = run_once(benchmark, fig6a)
    rows = [
        [i + 1, actual, estimated]
        for i, (actual, estimated) in enumerate(
            zip(result["actual"], result["estimated"])
        )
    ]
    emit(
        f"Figure 6(a): actual vs estimated Sort JCT -- mean error "
        f"{100 * result['mean_error']:.1f}% / std {100 * result['std_error']:.1f}% "
        "(paper: 10.8% / 9.7%)",
        format_table(["sample", "actual_s", "estimated_s"], rows),
    )
    assert result["mean_error"] < 0.30


def test_fig6b_cpu_interference(benchmark):
    result = run_once(benchmark, fig6b)
    emit(
        "Figure 6(b): normalized JCT vs collocated CPU load "
        "(paper: PiEst slows, Sort mostly unaffected)",
        "\n".join(format_series(k, v) for k, v in result.items()),
    )
    assert result["PiEst"][900] > result["Sort"][900] > 1.0


def test_fig6c_io_interference(benchmark):
    result = run_once(benchmark, fig6c)
    emit(
        "Figure 6(c): normalized JCT vs collocated I/O rate "
        "(paper: Sort grows exponentially, PiEst flat)",
        "\n".join(format_series(k, v) for k, v in result.items()),
    )
    assert result["Sort"][60] > 1.3
    assert result["PiEst"][60] < 1.15
