"""Benchmarks regenerating Figure 5 (JCT vs cluster/data size)."""

from conftest import emit, run_once

from repro.experiments.fig05_profiling_curves import fig5a, fig5bc, fig5d, linearity_r2
from repro.metrics.report import format_series, format_table


def test_fig5a_jct_vs_cluster_size(benchmark):
    result = run_once(
        benchmark, fig5a, cluster_sizes=(4, 8, 16, 24, 32), data_gb=3.0
    )
    lines = [format_series(bench, series) for bench, series in result.items()]
    emit(
        "Figure 5(a): normalized JCT vs cluster size (paper: inverse relation)",
        "\n".join(lines),
    )
    for series in result.values():
        sizes = sorted(series)
        assert series[sizes[-1]] < series[sizes[0]]


def test_fig5bc_phase_times_vs_cluster_size(benchmark):
    result = run_once(
        benchmark, fig5bc, cluster_sizes=(2, 4, 8, 12), data_sizes_gb=(2.0, 4.0)
    )
    for phase in ("map", "reduce"):
        rows = [
            [f"{gb:g}GB"] + [result[phase][gb][n] for n in (2, 4, 8, 12)]
            for gb in sorted(result[phase])
        ]
        emit(
            f"Figure 5({'b' if phase == 'map' else 'c'}): Sort {phase}-phase "
            "time (s) vs cluster size",
            format_table(["data", "n=2", "n=4", "n=8", "n=12"], rows),
        )
    # map phase is inverse in cluster size (paper Fig 5(b))
    for gb, series in result["map"].items():
        assert series[12] < series[2]


def test_fig5d_jct_linear_in_data_size(benchmark):
    result = run_once(
        benchmark, fig5d, data_sizes_gb=(2.0, 4.0, 6.0, 8.0), cluster_sizes=(2, 4, 8)
    )
    lines = [
        format_series(f"C{n}", series) + f"  [R2={linearity_r2(series):.3f}]"
        for n, series in result.items()
    ]
    emit(
        "Figure 5(d): Sort JCT (s) vs data size per cluster "
        "(paper: almost linear)",
        "\n".join(lines),
    )
    for series in result.values():
        assert linearity_r2(series) > 0.85  # the page-cache cliff kinks one series
