"""Benchmark regenerating the abstract's headline numbers."""

from conftest import emit, run_once

from repro.experiments.common import SMALL
from repro.experiments.headline import PAPER_HEADLINE, headline_numbers
from repro.metrics.report import format_table


def test_headline_numbers(benchmark):
    measured = run_once(benchmark, headline_numbers, SMALL)
    rows = [
        [key, measured[key], PAPER_HEADLINE[key]]
        for key in PAPER_HEADLINE
    ]
    emit(
        "Headline claims (abstract): measured vs paper",
        format_table(["claim", "measured_%", "paper_%"], rows),
    )
    # directionally: hybrid beats virtual on JCT, native on utilization
    # and energy
    assert measured["jct_improvement_vs_virtual_pct"] > 0
    assert measured["utilization_gain_vs_native_pct"] > 0
    assert measured["energy_savings_vs_native_pct"] > 0
