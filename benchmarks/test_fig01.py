"""Benchmarks regenerating Figure 1 (virtualization overheads)."""

from conftest import emit, run_once

from repro.experiments.common import SMALL
from repro.experiments.fig01_virt_overheads import fig1a, fig1b, fig1c
from repro.metrics.report import format_table


def test_fig1a_virtual_overhead_per_benchmark(benchmark):
    result = run_once(benchmark, fig1a, SMALL, (1, 2, 4))
    rows = [
        [bench, series[1], series[2], series[4]]
        for bench, series in result.items()
    ]
    emit(
        "Figure 1(a): % JCT increase over native (paper: I/O-bound 7-24%, CPU-bound <8%)",
        format_table(["benchmark", "1-VM", "2-VM", "4-VM"], rows),
    )
    assert result["Sort"][2] > result["PiEst"][2]


def test_fig1b_sort_jct_vs_data_size(benchmark):
    result = run_once(benchmark, fig1b, SMALL)
    rows = [
        [f"{gb:g}GB", series[1], series[2], series[4]]
        for gb, series in result.items()
    ]
    emit(
        "Figure 1(b): Sort JCT (s) by VM density (paper: grows with size)",
        format_table(["data", "1-VM", "2-VM", "4-VM"], rows),
    )
    sizes = sorted(result)
    assert result[sizes[-1]][2] > result[sizes[0]][2]


def test_fig1c_hdfs_virtual_vs_native(benchmark):
    result = run_once(benchmark, fig1c, SMALL, (1.0, 2.0, 4.0, 8.0, 16.0))
    rows = [
        [f"{gb:g}GB", m["r_io"], m["w_io"], m["r_tput"], m["w_tput"]]
        for gb, m in result.items()
    ]
    emit(
        "Figure 1(c): HDFS virtual/native (paper: <1 and degrading with size)",
        format_table(["data", "R-IO", "W-IO", "R-Tput", "W-Tput"], rows),
    )
    assert all(v < 1.0 for m in result.values() for v in m.values())
