"""Benchmarks regenerating Figure 2 (deployment effects)."""

from conftest import emit, run_once

from repro.experiments.common import SMALL
from repro.experiments.fig02_deployment import (
    fig2a,
    fig2b,
    fig2c,
    fig2d,
    fig2d_mean_gain_pct,
)
from repro.metrics.report import format_table


def test_fig2a_same_host_vs_cross_host(benchmark):
    result = run_once(benchmark, fig2a, SMALL)
    rows = [
        [f"{gb:g}GB", series["same_host"], series["cross_host"]]
        for gb, series in result.items()
    ]
    emit(
        "Figure 2(a): Sort JCT (s), Same-Host vs Cross-Host "
        "(paper: Same-Host wins; our disk model inverts the ordering -- "
        "see EXPERIMENTS.md deviation notes; growth with size reproduces)",
        format_table(["data", "same_host", "cross_host"], rows),
    )
    sizes = sorted(result)
    for column in ("same_host", "cross_host"):
        assert result[sizes[-1]][column] > result[sizes[0]][column]


def test_fig2b_kmeans_gains_with_vm_density(benchmark):
    result = run_once(benchmark, fig2b, SMALL)
    rows = [
        [f"{gb:g}GB", s["V1-1M-1R"], s["V2-2M-4R"], s["V4-4M-6R"]]
        for gb, s in result.items()
    ]
    emit(
        "Figure 2(b): Kmeans JCT normalized to V1 (paper: V2/V4 < 1, "
        "more so at larger inputs)",
        format_table(["data", "V1-1M-1R", "V2-2M-4R", "V4-4M-6R"], rows),
    )
    largest = max(result)
    assert result[largest]["V2-2M-4R"] < 1.0


def test_fig2c_dom0_near_native(benchmark):
    result = run_once(benchmark, fig2c, SMALL)
    rows = [[bench, value] for bench, value in result.items()]
    emit(
        "Figure 2(c): Dom-0 JCT / native (paper: within 5%)",
        format_table(["benchmark", "dom0/native"], rows),
    )
    assert all(v <= 1.06 for v in result.values())


def test_fig2d_split_vs_combined(benchmark):
    result = run_once(benchmark, fig2d, SMALL)
    rows = [[bench, value] for bench, value in result.items()]
    emit(
        f"Figure 2(d): split/combined JCT (paper: mean gain 12.8%; "
        f"measured mean gain {fig2d_mean_gain_pct(result):.1f}%)",
        format_table(["benchmark", "split/combined"], rows),
    )
    assert fig2d_mean_gain_pct(result) > 0
