"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables/figures at the
SMALL experiment scale and prints the measured series next to the
paper's reported values, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the EXPERIMENTS.md data source.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    print(f"\n=== {title} ===")
    print(body)
