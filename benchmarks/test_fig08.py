"""Benchmarks regenerating Figure 8 (HybridMR's benefits)."""

from conftest import emit, run_once

from repro.experiments.common import SMALL
from repro.experiments.fig08_hybridmr_benefits import (
    PAPER_FIG8B,
    PAPER_FIG8C,
    fig8a,
    fig8b,
    fig8c,
    fig8d,
    summarize_reduction,
)
from repro.metrics.report import format_series, format_table


def test_fig8a_phase1_vs_random_placement(benchmark):
    result = run_once(benchmark, fig8a, SMALL)
    rows = [
        [mix, gains["transactional_gain"], gains["batch_gain"]]
        for mix, gains in result.items()
    ]
    emit(
        "Figure 8(a): Phase I performance gain over random placement "
        "(paper: 0.05-0.45 depending on mix)",
        format_table(["mix", "transactional", "batch"], rows),
    )
    assert all(g["batch_gain"] > 0 for g in result.values())
    assert all(g["transactional_gain"] > 0 for g in result.values())


def test_fig8b_single_job_drm_ablation(benchmark):
    result = run_once(benchmark, fig8b, SMALL)
    rows = [
        [bench, r["cpu"], r["memory"], r["io"], r["cpu+memory+io"]]
        for bench, r in result.items()
    ]
    avg, best = summarize_reduction(result, "cpu+memory+io")
    emit(
        f"Figure 8(b): single-job % JCT reduction -- measured avg "
        f"{avg:.1f}% / max {best:.1f}% (paper: {PAPER_FIG8B['avg_pct']}% / "
        f"{PAPER_FIG8B['max_pct']}%)",
        format_table(["benchmark", "cpu", "memory", "io", "all"], rows),
    )
    assert best > 10.0


def test_fig8c_concurrent_jobs_drm_ablation(benchmark):
    result = run_once(benchmark, fig8c, SMALL)
    rows = [
        [bench, r["cpu"], r["memory"], r["io"], r["cpu+memory+io"]]
        for bench, r in result.items()
    ]
    avg, best = summarize_reduction(result, "cpu+memory+io")
    emit(
        f"Figure 8(c): concurrent-jobs % JCT reduction -- measured avg "
        f"{avg:.1f}% / max {best:.1f}% (paper: {PAPER_FIG8C['avg_pct']}% / "
        f"{PAPER_FIG8C['max_pct']}%)",
        format_table(["benchmark", "cpu", "memory", "io", "all"], rows),
    )
    assert avg > 15.0


def test_fig8d_rubis_latency_curves(benchmark):
    result = run_once(
        benchmark, fig8d,
        client_counts=(400, 1600, 3200, 4800, 6400), pms=6, horizon_s=200.0,
    )
    emit(
        "Figure 8(d): RUBiS latency (ms) vs clients "
        "(paper: HybridMR between isolated and RUBiS+MapReduce)",
        "\n".join(format_series(k, v) for k, v in result.items()),
    )
    for clients in (1600, 3200, 4800):
        assert result["isolated"][clients] <= result["hybridmr"][clients]
        assert result["hybridmr"][clients] <= result["fifo"][clients]
